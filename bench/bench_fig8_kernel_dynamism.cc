// Figure 8: kernel performance under input dynamism.
//
// Decode bandwidth utilization (top) and causal-prefill FLOPs utilization
// (bottom) for FlashInfer vs FlashAttention across sequence-length
// distributions {constant, uniform, skewed} (batch 16, mean length 1024) on
// H100 and A100. FlashInfer = balanced scheduler + workload-matched tile
// sizes (+ head-group fusion for GQA); FlashAttention = per-request CTA
// mapping with its fixed large tile and per-qo-head scheduling.
#include "bench_common.h"
#include "serving/backends.h"
#include "serving/workload.h"
#include "util/rng.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::PctWithPaper;

namespace {

struct HeadCfg {
  const char* name;
  int qo_heads;
  int kv_heads;
};

// Fixed per-invocation cost a standalone kernel benchmark pays on top of the
// kernel itself (plan upload, synchronization, CUDA events). Serving paths
// amortize this across layers via the plan cache; kernel-level utilization
// numbers in the paper include it, so this bench does too.
constexpr double kHarnessOverheadUs = 18.0;

double DecodeUtil(const gpusim::DeviceSpec& dev, const BackendConfig& backend,
                  const std::vector<int64_t>& lens, const HeadCfg& heads,
                  int tile_override) {
  AttnSimInput in;
  in.qo_lens.assign(lens.size(), 1);
  in.kv_lens = lens;
  in.num_qo_heads = heads.qo_heads;
  in.num_kv_heads = heads.kv_heads;
  in.head_dim = 128;
  in.tile_q_override = tile_override;
  auto report = SimulateBatchAttention(dev, backend, in);
  report.time_us += kHarnessOverheadUs;
  return report.BandwidthUtil(dev);
}

double PrefillUtil(const gpusim::DeviceSpec& dev, const BackendConfig& backend,
                   const std::vector<int64_t>& lens, bool dense) {
  AttnSimInput in;
  in.qo_lens = lens;  // Self-attention over the prompt, causal.
  in.kv_lens = lens;
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  in.causal = true;
  in.force_dense = dense;
  const auto report = SimulateBatchAttention(dev, backend, in);
  return report.FlopsUtil(dev);
}

// Paper values (Fig. 8), for side-by-side printing.
struct PaperRow {
  double constant, uniform, skewed;
};

}  // namespace

int main() {
  bench::Banner("Figure 8", "decode bandwidth & prefill FLOPs utilization vs FlashAttention");
  bench::Note("batch 16, mean length 1024, head_dim 128; cells: measured% (paper%)");

  const HeadCfg head_cfgs[] = {{"MHA", 32, 32}, {"GQA-4", 32, 8}, {"GQA-8", 32, 4}};
  auto fi = FlashInferBackend();
  // FlashAttention decode = FlashDecoding: fixed split count, oversized row
  // tile (occupancy-limited), no head-group fusion.
  auto fa = FlashAttentionBackend();
  fa.scheduler = SchedulerKind::kFixedSplit;

  struct DeviceCase {
    gpusim::DeviceSpec dev;
    // Paper decode rows: {FI, FA} x {MHA, GQA-4, GQA-8}.
    PaperRow decode[2][3];
    PaperRow prefill[2];  // {FI, FA} MHA.
  };
  const DeviceCase cases[] = {
      {gpusim::H100Sxm80GB(),
       {{{73, 65, 73}, {43, 43, 52}, {32, 29, 39}},
        {{70, 58, 53}, {43, 36, 35}, {32, 28, 29}}},
       {{40, 39, 48}, {37, 34, 44}}},
      {gpusim::A100Sxm40GB(),
       {{{73, 71, 70}, {44, 44, 54}, {33, 32, 42}},
        {{66, 62, 59}, {44, 41, 46}, {34, 28, 28}}},
       {{48, 49, 59}, {50, 47, 58}}},
  };

  for (const auto& dc : cases) {
    std::printf("\n--- %s: decode bandwidth utilization (%%) ---\n", dc.dev.name.c_str());
    AsciiTable t({"config", "backend", "constant", "uniform", "skewed"});
    for (int h = 0; h < 3; ++h) {
      for (int b = 0; b < 2; ++b) {
        const auto& backend = b == 0 ? fi : fa;
        // FlashAttention's decode path runs an oversized 64-row tile;
        // FlashInfer picks the tile from the fused query length.
        const int tile_override = b == 0 ? 0 : 64;
        const PaperRow& paper = dc.decode[b][h];
        double util[3];
        int d = 0;
        for (auto dist : {LengthDist::kConstant, LengthDist::kUniform, LengthDist::kSkewed}) {
          Rng rng(2024 + d);
          const auto lens = SampleLengths(rng, dist, 16, 1024);
          util[d++] = DecodeUtil(dc.dev, backend, lens, head_cfgs[h], tile_override);
        }
        t.AddRow({head_cfgs[h].name, backend.name, PctWithPaper(util[0], paper.constant),
                  PctWithPaper(util[1], paper.uniform), PctWithPaper(util[2], paper.skewed)});
      }
    }
    t.Print();

    std::printf("--- %s: causal prefill FLOPs utilization (%%), MHA ---\n",
                dc.dev.name.c_str());
    AsciiTable p({"backend", "constant", "uniform", "skewed"});
    // FA prefill never splits KV (splitting 128-row prefill tiles would
    // explode partial-output traffic): plain per-(tile, head) grid.
    const auto fa_prefill = FlashAttentionBackend();
    for (int b = 0; b < 2; ++b) {
      const auto& backend = b == 0 ? fi : fa_prefill;
      const PaperRow& paper = dc.prefill[b];
      double util[3];
      int d = 0;
      for (auto dist : {LengthDist::kConstant, LengthDist::kUniform, LengthDist::kSkewed}) {
        Rng rng(4048 + d);
        const auto lens = SampleLengths(rng, dist, 16, 1024);
        // FlashAttention's varlen prefill uses contiguous (dense) KV.
        util[d++] = PrefillUtil(dc.dev, backend, lens, /*dense=*/b == 1);
      }
      p.AddRow({backend.name, PctWithPaper(util[0], paper.constant),
                PctWithPaper(util[1], paper.uniform), PctWithPaper(util[2], paper.skewed)});
    }
    p.Print();
  }
  return 0;
}
