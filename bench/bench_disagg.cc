// Disaggregated prefill/decode serving bench: decode-tail isolation from
// long-prompt bursts at matched replica count.
//
// The experiment mirrors the disaggregation literature's headline claim
// (DistServe/Splitwise): in a unified fleet, every long-prompt burst turns
// the co-resident decodes' steps into mixed steps, and the decode ITL tail
// inherits the chunk cost no matter how the router spreads load or how fine
// the chunks are. Splitting the same replica count into a prefill pool and a
// decode pool removes the interference mechanically — decode replicas never
// see a prompt; finished prefills arrive as KV migrations over an
// NVLink-class link, priced by gpusim::CopyStream and overlapped with decode
// compute. The cost of the split is the migration itself, so the bench also
// reports how much of the transfer time was hidden under executed steps
// (MigrationOverlapEfficiency) and how many units the decode pool bounced.
//
// Acceptance: disaggregated decode-pool P99 ITL strictly beats the BEST
// unified config (policy x chunk-size sweep) at the same replica count,
// migration is predominantly hidden (overlap efficiency > 0.5 with
// migrations actually happening), and both pools drain clean (per-replica
// device-KV gauges at zero, token conservation exact).
//
// Usage: bench_disagg [--quick] [--json <path>] [--check <baseline>]
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "obs/metrics.h"

using namespace flashinfer;
using namespace flashinfer::cluster;
using namespace flashinfer::serving;

namespace {

EngineConfig ReplicaConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

std::vector<Request> Workload(bool quick) {
  Rng rng(2026);
  BurstyPrefillConfig w;
  w.num_steady = quick ? 240 : 960;
  w.steady_rate = 50.0;
  w.steady_input_lo = 64;
  w.steady_input_hi = 256;
  w.steady_output = 160;
  w.num_bursts = quick ? 4 : 16;
  w.burst_size = 4;
  w.first_burst_s = 0.8;
  w.burst_period_s = 1.0;
  w.burst_input_lo = 8192;
  w.burst_input_hi = 14336;
  w.burst_output = 32;
  return BurstyLongPrefillWorkload(rng, w);
}

int64_t ExpectedOutputTokens(const std::vector<Request>& reqs) {
  int64_t total = 0;
  for (const auto& r : reqs) total += std::max<int64_t>(r.output_len, 1);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");
  bench::JsonResult json;
  json.Add("bench", std::string("disagg"));

  bench::Banner("Disaggregated serving",
                "prefill/decode pool split vs best unified config, 4 replicas");
  bench::Note("workload: steady short-prompt decode traffic overlaid with bursts of");
  bench::Note("8-14k-token prompts; Llama 3.1 8B per replica. The gate metric is the");
  bench::Note("decode ITL tail: unified replicas absorb burst chunks into mixed");
  bench::Note("steps, the decode pool never sees them.");

  const auto workload = Workload(quick);
  const int64_t expected_tokens = ExpectedOutputTokens(workload);
  const int replicas = 4;

  // --- Unified sweep: router policy x prefill chunk size. -------------------
  std::printf("\n--- unified configs (%d replicas, %zu requests) ---\n", replicas,
              workload.size());
  AsciiTable ut({"policy", "chunk", "throughput (tok/s)", "median ITL (ms)",
                 "P99 ITL (ms)", "P99 TTFT (ms)"});
  double best_unified_p99 = 0.0;
  std::string best_unified;
  for (const auto policy : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded}) {
    for (const int64_t chunk : {int64_t{512}, int64_t{2048}}) {
      ClusterConfig cfg;
      cfg.engine = ReplicaConfig();
      cfg.engine.prefill_chunk_tokens = chunk;
      cfg.num_replicas = replicas;
      cfg.policy = policy;
      const ClusterMetrics m = ClusterEngine(cfg).Run(workload);
      const double p99 = m.aggregate.P99ItlMs();
      ut.AddRow({RouterPolicyName(policy), AsciiTable::Num(chunk, 0),
                 AsciiTable::Num(m.ThroughputTokS(), 0),
                 AsciiTable::Num(m.aggregate.MedianItlMs(), 2),
                 AsciiTable::Num(p99, 2),
                 AsciiTable::Num(m.aggregate.TtftPercentileMs(0.99), 1)});
      const std::string key = std::string(RouterPolicyName(policy)) + "_c" +
                              AsciiTable::Num(chunk, 0);
      json.Add("unified_" + key + "_p99_itl_ms", p99);
      if (best_unified.empty() || p99 < best_unified_p99) {
        best_unified_p99 = p99;
        best_unified = key;
      }
    }
  }
  ut.Print();
  std::printf("\nbest unified config: %s (P99 ITL %.2f ms)\n", best_unified.c_str(),
              best_unified_p99);
  json.Add("unified_best_p99_itl_ms", best_unified_p99);
  json.Add("unified_best_config", best_unified);

  // --- Disaggregated: 2 prefill + 2 decode over migration links. -----------
  ClusterConfig dcfg;
  dcfg.engine = ReplicaConfig();
  dcfg.engine.telemetry.enabled = true;  // Final KV gauges gate the drain.
  dcfg.num_replicas = replicas;
  dcfg.disaggregated = true;
  dcfg.prefill_replicas = 2;
  dcfg.policy = RouterPolicy::kLeastLoaded;
  ClusterEngine dce(dcfg);
  const ClusterMetrics dm = dce.Run(workload);

  std::printf("\n--- disaggregated (%d prefill + %d decode) ---\n",
              dcfg.prefill_replicas, replicas - dcfg.prefill_replicas);
  AsciiTable dt({"pool", "median ITL (ms)", "P99 ITL (ms)", "P99 TTFT (ms)",
                 "makespan (s)"});
  dt.AddRow({"prefill", AsciiTable::Num(dm.prefill_pool.MedianItlMs(), 2),
             AsciiTable::Num(dm.prefill_pool.P99ItlMs(), 2),
             AsciiTable::Num(dm.prefill_pool.TtftPercentileMs(0.99), 1),
             AsciiTable::Num(dm.prefill_pool.makespan_s, 2)});
  dt.AddRow({"decode", AsciiTable::Num(dm.decode_pool.MedianItlMs(), 2),
             AsciiTable::Num(dm.decode_pool.P99ItlMs(), 2), "-",
             AsciiTable::Num(dm.decode_pool.makespan_s, 2)});
  dt.Print();

  const double decode_p99 = dm.decode_pool.P99ItlMs();
  const double overlap_eff = dm.decode_pool.MigrationOverlapEfficiency().value_or(0.0);
  std::printf("\nmigrations: %lld shipped, %lld retained (decode pool full), "
              "%.1f Mtok KV moved\n",
              static_cast<long long>(dm.migrations),
              static_cast<long long>(dm.migrations_retained),
              static_cast<double>(dm.aggregate.migrated_kv_tokens) * 1e-6);
  std::printf("migration transfer time: %.1f ms total, %.1f ms hidden under "
              "decode steps, %.1f ms exposed as stalls (overlap efficiency "
              "%.0f%%)\n",
              dm.decode_pool.total_migration_ms, dm.decode_pool.migration_hidden_ms,
              dm.decode_pool.migration_stall_ms, 100.0 * overlap_eff);

  json.Add("disagg_decode_p99_itl_ms", decode_p99);
  json.Add("disagg_decode_median_itl_ms", dm.decode_pool.MedianItlMs());
  json.Add("disagg_p99_ttft_ms", dm.prefill_pool.TtftPercentileMs(0.99));
  json.Add("disagg_tok_s", dm.ThroughputTokS());
  json.Add("migrations", static_cast<double>(dm.migrations));
  json.Add("migrations_retained", static_cast<double>(dm.migrations_retained));
  json.Add("migration_overlap_eff", overlap_eff);
  json.Add("migration_total_ms", dm.decode_pool.total_migration_ms);
  json.Add("migration_stall_ms", dm.decode_pool.migration_stall_ms);

  // --- Drain exactness: conservation + per-replica device-KV gauges. -------
  bool drain_ok =
      dm.aggregate.rejected_requests == 0 &&
      dm.aggregate.ttft_ms.size() == workload.size() &&
      dm.aggregate.total_output_tokens == expected_tokens &&
      dm.prefill_pool.num_migrations_out == dm.migrations &&
      dm.decode_pool.num_migrations_in == dm.migrations;
  const obs::MetricsRegistry* reg = dce.Telemetry();
  for (int i = 0; reg != nullptr && i < replicas; ++i) {
    const obs::Gauge* g = reg->FindGauge(
        "fi_kv_device_tokens", obs::LabelSet().With("replica", std::to_string(i)));
    drain_ok = drain_ok && g != nullptr && g->value() == 0.0;
  }
  std::printf("drain check: %s (token conservation + zero final KV on all %d "
              "replicas)\n",
              drain_ok ? "clean" : "FAILED", replicas);

  // --- Gates. ---------------------------------------------------------------
  const double isolation = decode_p99 > 0.0 ? best_unified_p99 / decode_p99 : 0.0;
  const bool gate_isolated = decode_p99 > 0.0 && decode_p99 < best_unified_p99;
  const bool gate_overlap = dm.migrations > 0 && overlap_eff > 0.5;
  std::printf("\ndecode P99 ITL: %.2f ms disaggregated vs %.2f ms best unified "
              "(%.2fx, acceptance: strictly better)\n",
              decode_p99, best_unified_p99, isolation);
  std::printf("migration overlap efficiency: %.0f%% (acceptance: > 50%%, with "
              "migrations > 0)\n",
              100.0 * overlap_eff);
  json.Add("itl_isolation_x", isolation);
  json.Add("gate_itl_isolated", gate_isolated ? 1.0 : 0.0);
  json.Add("gate_overlap", gate_overlap ? 1.0 : 0.0);
  json.Add("gate_drain", drain_ok ? 1.0 : 0.0);
  const bool ok = gate_isolated && gate_overlap && drain_ok;
  json.Add("acceptance_passed", ok ? 1.0 : 0.0);
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (!ok) {
    std::printf("ACCEPTANCE FAILED\n");
    return 1;
  }
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json)) return 1;
  }
  return 0;
}
