// Figure 9 (Sec. 4.3): StreamingLLM with fused-RoPE attention.
//
// Top: end-to-end inter-token latency of Vicuna-13B StreamingLLM decoding
// with (a) FlashInfer's fused RoPE+attention kernel, (b) FlashAttention with
// a separate RoPE rewrite pass over the rolling cache, (c) the original
// reference implementation with its extra cache copies and host overheads.
// Bottom: kernel-level bandwidth utilization of the fused kernel vs the
// unfused pair, for MHA and GQA-8 at short/long sequence lengths.
#include "bench_common.h"
#include "serving/backends.h"
#include "serving/streaming_llm.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

struct KernelUtil {
  double fused;    // FlashInfer fused RoPE+attention.
  double unfused;  // FA attention + separate RoPE pass over Q and K cache.
};

KernelUtil DecodeRopeUtil(const gpusim::DeviceSpec& dev, int64_t kv_len, int kv_heads) {
  AttnSimInput in;
  in.qo_lens = {1};
  in.kv_lens = {kv_len};
  in.num_qo_heads = 32;
  in.num_kv_heads = kv_heads;
  in.head_dim = 128;

  KernelUtil u;
  const auto fused = SimulateBatchAttention(dev, FlashInferBackend(), in);
  u.fused = fused.BandwidthUtil(dev);

  auto fa = FlashAttentionBackend();
  auto attn = SimulateBatchAttention(dev, fa, in);
  // Unfused RoPE: rewrite every cached key with new cache positions
  // (read+write) plus rotate Q; elementwise kernels at ~45% of HBM peak.
  const double rope_bytes =
      2.0 * (static_cast<double>(kv_len) * kv_heads + 32.0) * 128.0 * 2.0;
  const double rope_us = rope_bytes / (dev.hbm_gbps * 0.45 * 1e3) + dev.kernel_launch_us;
  // Utilization counts useful attention bytes over the combined time.
  u.unfused = attn.total_hbm_bytes / ((attn.time_us + rope_us) * dev.hbm_gbps * 1e3);
  return u;
}

}  // namespace

int main() {
  bench::Banner("Figure 9", "StreamingLLM: fused RoPE vs unfused (ITL and kernel bandwidth)");
  bench::Note("Vicuna-13B, attention sinks + recent window; cells: measured (paper)");

  struct DeviceCase {
    gpusim::DeviceSpec dev;
    double paper_itl[3][3];  // [mode][recent size] for 1000/2000/4000.
    double paper_util[2][4];  // [seq 255|2000][FI-MHA, FA-MHA, FI-GQA, FA-GQA].
  };
  const DeviceCase cases[] = {
      {gpusim::H100Sxm80GB(),
       {{13.2, 13.3, 13.4}, {18.2, 19.1, 20.0}, {26.4, 26.7, 29.7}},
       {{50, 21, 12, 3}, {83, 35, 42, 19}}},
      {gpusim::A100Sxm40GB(),
       {{24.2, 24.3, 24.5}, {33.5, 33.7, 34.7}, {43.1, 42.1, 43.5}},
       {{50, 24, 18, 3}, {80, 51, 43, 22}}},
  };
  const char* mode_names[] = {"FlashInfer (fused RoPE)", "FA (unfused RoPE)",
                              "Original implementation"};
  const StreamingRopeMode modes[] = {StreamingRopeMode::kFusedFlashInfer,
                                     StreamingRopeMode::kUnfusedFlashAttention,
                                     StreamingRopeMode::kOriginalImpl};

  for (const auto& dc : cases) {
    std::printf("\n--- %s: inter-token latency (ms) ---\n", dc.dev.name.c_str());
    AsciiTable t({"implementation", "recent 1000", "recent 2000", "recent 4000"});
    for (int m = 0; m < 3; ++m) {
      std::vector<std::string> row{mode_names[m]};
      int r = 0;
      for (int recent : {1000, 2000, 4000}) {
        StreamingLlmConfig cfg;
        cfg.model = Vicuna13B();
        cfg.device = dc.dev;
        cfg.recent_window = recent;
        row.push_back(WithPaper(StreamingLlmItlMs(cfg, modes[m]), dc.paper_itl[m][r++]));
      }
      t.AddRow(row);
    }
    t.Print();

    std::printf("--- %s: decode kernel bandwidth utilization (%%) ---\n",
                dc.dev.name.c_str());
    AsciiTable k({"seq len", "FlashInfer MHA", "FA MHA", "FlashInfer GQA-8", "FA GQA-8"});
    int s = 0;
    for (int64_t len : {int64_t{255}, int64_t{2000}}) {
      const auto mha = DecodeRopeUtil(dc.dev, len, 32);
      const auto gqa = DecodeRopeUtil(dc.dev, len, 4);
      k.AddRow({std::to_string(len), bench::PctWithPaper(mha.fused, dc.paper_util[s][0]),
                bench::PctWithPaper(mha.unfused, dc.paper_util[s][1]),
                bench::PctWithPaper(gqa.fused, dc.paper_util[s][2]),
                bench::PctWithPaper(gqa.unfused, dc.paper_util[s][3])});
      ++s;
    }
    k.Print();
  }
  return 0;
}
