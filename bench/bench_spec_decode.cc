// Speculative-decoding bench: tokens/s vs. acceptance rate and draft-tree
// shape, against the vanilla one-token-per-step decode baseline.
//
// Every spec point runs the same ShareGPT-style workload through the serving
// engine with draft+verify steps: the draft model (Llama-68M class) proposes
// a token tree per branch, the target (Llama 3.1 8B) verifies all tree
// tokens in one batched step priced through the REAL tree-attention kernel
// path (ancestor mask -> BSR -> scheduler -> cost model), and rejected
// branches roll their KV back through PagedKVCache refcounts. The crossover
// the sweep shows is the one production speculators live on: high acceptance
// amortizes the target's weight streaming over several tokens per step
// (>= 1.3x at 0.8 acceptance, gated below); low acceptance pays the draft +
// verify overhead for ~1 committed token and loses gracefully.
//
// Usage: bench_spec_decode [--quick] [--json <path>]
#include <cstring>
#include <string>

#include "bench_common.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

struct Shape {
  const char* name;
  int depth;
  int branching;
};

EngineConfig TargetConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");
  // Small-batch regime: a backlogged batch small enough that even the verify
  // step's batch * tree tokens stays under the GEMM roofline knee — decode is
  // weight-streaming-bound, so every extra token a verify step commits is
  // nearly free. (A Poisson trickle would hide the win behind idle time: when
  // arrivals are the bottleneck, throughput tracks the arrival rate for any
  // decoder.)
  const int num_requests = quick ? 32 : 48;
  const double rate = 10000.0;  // Everything arrives at once: pure backlog.

  bench::Banner("Speculative decoding",
                "tree-draft verification through the real attention kernels");
  bench::Note("Llama 3.1 8B target + 68M draft on H100.");
  bench::Note("verify = ONE target step over all tree tokens (tree mask -> BSR ->");
  bench::Note("scheduler -> cost model); vanilla decode = 1 token/branch/step.");

  Rng rng(2026);
  auto workload = UniformWorkload(rng, num_requests, rate, 64, 512, /*output_len=*/256);

  const auto vanilla = ServingEngine(TargetConfig()).Run(workload);
  std::printf("\nvanilla decode (batch %d backlog): %.0f tok/s (median ITL %.2f ms,"
              " %lld steps)\n",
              num_requests, vanilla.ThroughputTokS(), vanilla.MedianItlMs(),
              static_cast<long long>(vanilla.num_steps));

  const Shape shapes[] = {
      {"chain-2", 2, 1}, {"chain-4", 4, 1}, {"chain-6", 6, 1}, {"tree-4x2", 4, 2}};
  const double accepts[] = {0.2, 0.5, 0.8, 0.95};

  bench::JsonResult json;
  json.Add("bench", std::string("spec_decode"));
  json.Add("vanilla_tok_s", vanilla.ThroughputTokS());
  json.Add("vanilla_median_itl_ms", vanilla.MedianItlMs());

  AsciiTable t({"shape", "accept", "tok/s", "vs vanilla", "tok/verify",
                "mean accepted", "draft ovh %", "median ITL (ms)"});
  double chain4_speedup_hi = 0.0, chain4_speedup_lo = 0.0;
  for (const auto& shape : shapes) {
    for (const double accept : accepts) {
      EngineConfig cfg = TargetConfig();
      cfg.spec.enabled = true;
      cfg.spec.tree = spec::TreeConfig{shape.depth, shape.branching};
      cfg.spec.default_accept_prob = accept;
      const auto m = ServingEngine(cfg).Run(workload);
      const double speedup = m.ThroughputTokS() / vanilla.ThroughputTokS();
      if (std::strcmp(shape.name, "chain-4") == 0 && accept == 0.8) {
        chain4_speedup_hi = speedup;
      }
      if (std::strcmp(shape.name, "chain-4") == 0 && accept == 0.2) {
        chain4_speedup_lo = speedup;
      }
      t.AddRow({shape.name, AsciiTable::Num(accept, 2),
                AsciiTable::Num(m.ThroughputTokS(), 0), AsciiTable::Num(speedup, 2),
                AsciiTable::Num(m.TokensPerSpecStep(), 2),
                AsciiTable::Num(m.MeanAcceptedLen(), 2),
                AsciiTable::Num(100.0 * m.DraftOverheadFrac(), 1),
                AsciiTable::Num(m.MedianItlMs(), 2)});
      const std::string key =
          std::string(shape.name) + "_a" + AsciiTable::Num(accept, 2);
      json.Add(key + "_tok_s", m.ThroughputTokS());
      json.Add(key + "_speedup", speedup);
      json.Add(key + "_tok_per_verify", m.TokensPerSpecStep());
      json.Add(key + "_draft_overhead", m.DraftOverheadFrac());
    }
  }
  t.Print();

  bench::Note("\nexpected shape: tokens/verify tracks E[accepted]+1; the win grows");
  bench::Note("with acceptance as each verify step amortizes the target's weight");
  bench::Note("streaming over more committed tokens. At this small batch even low");
  bench::Note("acceptance wins slightly: decode is weight-bound, so verifying a");
  bench::Note("few extra tokens per branch is nearly free — the classic reason");
  bench::Note("speculation targets the latency regime. Trees beat chains at equal");
  bench::Note("depth only when extra candidates rescue a level (cf. SpecInfer).");

  // --- Throughput regime: saturated batch, GEMM goes compute-bound. --------
  // Fixed-length outputs keep several hundred branches resident in lockstep,
  // so verify steps pay full price for every tree token (batch * tree tokens
  // is past the roofline knee) while vanilla decode stays near the
  // weight-streaming floor — the regime where low acceptance LOSES. (The
  // ShareGPT sweep above never gets there: its log-normal output tail drains
  // at a small, weight-bound batch where speculation is nearly free.)
  const double sat_rate = 150.0;
  const int sat_requests = quick ? 250 : 400;
  Rng sat_rng(7);
  auto sat_workload =
      UniformWorkload(sat_rng, sat_requests, sat_rate, 64, 256, /*output_len=*/128);
  const auto sat_vanilla = ServingEngine(TargetConfig()).Run(sat_workload);
  std::printf("\n--- saturated regime (%.0f req/s offered): crossover vs acceptance"
              " ---\n", sat_rate);
  std::printf("vanilla decode: %.0f tok/s\n", sat_vanilla.ThroughputTokS());
  AsciiTable st({"shape", "accept", "tok/s", "vs vanilla", "tok/verify",
                 "draft ovh %"});
  double sat_speedup_lo = 0.0, sat_speedup_hi = 0.0;
  for (const double accept : accepts) {
    EngineConfig cfg = TargetConfig();
    cfg.spec.enabled = true;
    cfg.spec.tree = spec::TreeConfig{4, 1};
    cfg.spec.default_accept_prob = accept;
    const auto m = ServingEngine(cfg).Run(sat_workload);
    const double speedup = m.ThroughputTokS() / sat_vanilla.ThroughputTokS();
    if (accept == 0.2) sat_speedup_lo = speedup;
    if (accept == 0.95) sat_speedup_hi = speedup;
    st.AddRow({"chain-4", AsciiTable::Num(accept, 2),
               AsciiTable::Num(m.ThroughputTokS(), 0), AsciiTable::Num(speedup, 2),
               AsciiTable::Num(m.TokensPerSpecStep(), 2),
               AsciiTable::Num(100.0 * m.DraftOverheadFrac(), 1)});
    const std::string key = "saturated_chain-4_a" + AsciiTable::Num(accept, 2);
    json.Add(key + "_tok_s", m.ThroughputTokS());
    json.Add(key + "_speedup", speedup);
  }
  st.Print();

  std::printf("\nchain-4 @ accept 0.80 (small batch): %.2fx vs vanilla"
              " (acceptance: >= 1.30x)\n",
              chain4_speedup_hi);
  std::printf("chain-4 @ accept 0.20 (small batch): %.2fx vs vanilla"
              " (acceptance: >= 0.90x — speculation is near-free when"
              " weight-bound)\n",
              chain4_speedup_lo);
  std::printf("chain-4 @ accept 0.20 (saturated): %.2fx vs vanilla (acceptance:"
              " graceful loss, 0.45x..0.98x)\n",
              sat_speedup_lo);
  std::printf("chain-4 @ accept 0.95 (saturated): %.2fx vs vanilla (acceptance:"
              " >= 1.10x — high acceptance survives saturation)\n",
              sat_speedup_hi);
  json.Add("gate_chain4_a080_speedup", chain4_speedup_hi);
  json.Add("gate_chain4_a020_speedup", chain4_speedup_lo);
  json.Add("gate_saturated_a020_speedup", sat_speedup_lo);
  json.Add("gate_saturated_a095_speedup", sat_speedup_hi);
  const bool ok = chain4_speedup_hi >= 1.3 && chain4_speedup_lo >= 0.9 &&
                  sat_speedup_lo >= 0.45 && sat_speedup_lo < 0.98 &&
                  sat_speedup_hi >= 1.1;
  json.Add("acceptance_passed", ok ? 1.0 : 0.0);
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (!ok) {
    std::printf("ACCEPTANCE FAILED\n");
    return 1;
  }
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json)) return 1;
  }
  return 0;
}
