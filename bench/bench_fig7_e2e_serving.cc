// Figure 7 (Sec. 4.1): end-to-end LLM serving, SGLang with the FlashInfer
// backend vs SGLang with the Triton backend.
//
// Median ITL and TTFT on Llama-3.1-8B (1xH100) and 70B (4xH100, tensor
// parallel) under ShareGPT-like and Variable U(512,2048) workloads, at
// request rates in the latency-sensitive regime (paper: rate adjusted for
// P99 TTFT < 200 ms).
//
// Usage: bench_fig7_e2e_serving [--json <path>]
#include <string>

#include "bench_common.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

struct Setting {
  const char* model_name;
  ModelSpec model;
  double hbm_gb;
  double sharegpt_rate;
  double variable_rate;
  // Paper medians [workload][backend = Triton, FlashInfer].
  double paper_itl[2][2];
  double paper_ttft[2][2];
};

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const char* json_path = bench::ArgValue(argc, argv, "--json");
  bench::Banner("Figure 7", "e2e serving: SGLang + FlashInfer vs SGLang + Triton");
  bench::Note("median ITL / TTFT (ms); cells: measured (paper)");

  bench::JsonResult json;
  json.Add("bench", std::string("fig7_e2e_serving"));

  const Setting settings[] = {
      {"Llama 3.1 8B Instruct (1xH100)", Llama31_8B(), 80.0, 44.0, 18.0,
       {{21.7, 13.5}, {29.6, 9.1}},
       {{49.2, 38.8}, {61.8, 53.2}}},
      {"Llama 3.1 70B Instruct (4xH100)", Llama31_70B(4), 80.0, 14.0, 6.0,
       {{48.3, 24.0}, {30.7, 21.8}},
       {{141.2, 115.6}, {165.2, 157.8}}},
  };

  int model_idx = 0;
  for (const auto& s : settings) {
    std::printf("\n--- %s ---\n", s.model_name);
    AsciiTable t({"workload", "backend", "median ITL (ms)", "median TTFT (ms)",
                  "throughput (tok/s)"});
    const std::string mkey = model_idx == 0 ? "llama8b" : "llama70b_tp4";
    for (int w = 0; w < 2; ++w) {
      Rng rng(99);
      const auto workload =
          w == 0 ? ShareGptWorkload(rng, 300, s.sharegpt_rate)
                 : UniformWorkload(rng, 150, s.variable_rate, 512, 2048, 256);
      const char* wname = w == 0 ? "ShareGPT" : "Variable";
      int b = 0;
      for (const auto& backend : {TritonBackend(), FlashInferBackend()}) {
        EngineConfig cfg;
        cfg.model = s.model;
        cfg.device = gpusim::H100Sxm80GB();
        cfg.backend = backend;
        cfg.hbm_capacity_gb = s.hbm_gb;
        const auto m = ServingEngine(cfg).Run(workload);
        t.AddRow({wname, backend.name, WithPaper(m.MedianItlMs(), s.paper_itl[w][b], 1),
                  WithPaper(m.MedianTtftMs(), s.paper_ttft[w][b], 1),
                  AsciiTable::Num(m.ThroughputTokS(), 0)});
        const std::string key = mkey + "_" + (w == 0 ? "sharegpt" : "variable") +
                                (b == 0 ? "_triton" : "_flashinfer");
        json.Add(key + "_median_itl_ms", m.MedianItlMs());
        json.Add(key + "_median_ttft_ms", m.MedianTtftMs());
        json.Add(key + "_p99_itl_ms", m.P99ItlMs());
        json.Add(key + "_tok_s", m.ThroughputTokS());
        ++b;
      }
    }
    t.Print();
    ++model_idx;
  }
  bench::Note("\nexpected shape: FlashInfer below Triton on every ITL/TTFT pair;");
  bench::Note("largest ITL gaps on the Variable workload (longer KV, more imbalance).");
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  return 0;
}
