// Figure 11 (Appendix A): GQA head-group fusion ablation.
//
// Decode with grouped query heads: fusing the head-group dimension into the
// query rows lets one shared-memory KV load serve all g query heads of the
// group; without fusion each qo head's CTA re-reads its KV head's data
// (repeats from L2). Reported as decode bandwidth utilization and latency.
#include "bench_common.h"
#include "serving/backends.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

struct Result {
  double util;
  double time_us;
};

Result Decode(const gpusim::DeviceSpec& dev, int group, bool fusion) {
  AttnSimInput in;
  in.qo_lens.assign(16, 1);
  in.kv_lens.assign(16, 2048);
  in.num_qo_heads = 32;
  in.num_kv_heads = 32 / group;
  in.head_dim = 128;
  auto backend = FlashInferBackend();
  backend.head_fusion = fusion;
  const auto r = SimulateBatchAttention(dev, backend, in);
  return {r.BandwidthUtil(dev), r.time_us};
}

}  // namespace

int main() {
  bench::Banner("Figure 11", "head-group fusion for GQA (decode, batch 16, kv len 2048)");
  bench::Note("utilization counts unique KV bytes; unfused repeats hit L2 but still cost time");
  const auto dev = gpusim::H100Sxm80GB();

  AsciiTable t({"group size", "fused util %", "unfused util %", "fused us", "unfused us",
                "fusion speedup"});
  for (int group : {1, 4, 8}) {
    const auto fused = Decode(dev, group, true);
    const auto unfused = Decode(dev, group, false);
    t.AddRow({std::to_string(group), bench::Pct(fused.util), bench::Pct(unfused.util),
              AsciiTable::Num(fused.time_us, 1), AsciiTable::Num(unfused.time_us, 1),
              AsciiTable::Num(unfused.time_us / fused.time_us, 2) + "x"});
  }
  t.Print();
  bench::Note("expected shape: no effect at group 1; growing speedup with group size");
  return 0;
}
