// Quantized + compressed host KV tier: capacity multiplier x accuracy proxy
// x restore latency.
//
// Two parts:
//   1. Page-codec sweep at REAL model geometry (8 KV heads x 128 head_dim,
//      f16, 16-token pages = 64 KiB/page): for each codec config, encode a
//      host tier's worth of correlated synthetic KV and measure the
//      effective capacity multiplier (logical/stored bytes), the mean
//      per-page quantization MSE (the accuracy proxy), and bit-exactness of
//      the lossless path. Acceptance: int8+lz4 reaches >= 2x capacity at a
//      bounded proxy; compress-only decodes bit-exactly.
//   2. Engine sweep under KV pressure (Llama 3.1 8B, H100): codec-off vs
//      int8+lz4 with the same nominal host capacity. The codec run must
//      price decode time into restores (codec_decode_ms > 0), meter stored
//      bytes below logical, and convert recompute restores into swap
//      restores on a host tier the raw path exhausts. Codec-off must be
//      bit-identical to a default-config run (the bugfix pin).
//
// Usage: bench_kv_quant [--quick] [--json <path>] [--check <baseline>]
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kvcache/paged.h"
#include "serving/engine.h"
#include "serving/workload.h"
#include "util/codec.h"
#include "util/float_types.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

double HbmForBudget(const EngineConfig& cfg, int64_t budget_tokens) {
  const double kv_bytes = static_cast<double>(budget_tokens) *
                          cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  return (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
}

// Real per-GPU KV geometry of the engine's model: 8 KV heads (GQA), 128
// head_dim, f16 storage, 16-token pages -> 64 KiB per page.
constexpr int kHeads = 8;
constexpr int kDim = 128;
constexpr int kPage = 16;

/// Correlated synthetic KV: smooth per-head activations with token-position
/// drift plus small noise — the value structure real KV compresses on
/// (nearby tokens and dims are similar), not white noise.
void FillSequence(PagedKVCache& kv, int seq, int64_t tokens, Rng& rng) {
  std::vector<float> k(static_cast<size_t>(tokens) * kHeads * kDim);
  std::vector<float> v(k.size());
  for (int64_t t = 0; t < tokens; ++t) {
    for (int h = 0; h < kHeads; ++h) {
      for (int d = 0; d < kDim; ++d) {
        const size_t i =
            (static_cast<size_t>(t) * kHeads + static_cast<size_t>(h)) * kDim +
            static_cast<size_t>(d);
        const float base = std::sin(0.02f * static_cast<float>(d) +
                                    0.7f * static_cast<float>(h)) *
                           2.0f;
        const float drift = 0.001f * static_cast<float>(t);
        const float noise = static_cast<float>(rng.Uniform(-0.05, 0.05));
        k[i] = base + drift + noise;
        v[i] = 0.5f * base - drift + noise;
      }
    }
  }
  kv.AppendTokens(seq, k.data(), v.data(), tokens);
}

struct CodecPoint {
  const char* name;
  KvCodecConfig cfg;
};

struct CodecRow {
  double multiplier = 0.0;  // logical / stored bytes.
  double mean_mse = 0.0;
  double restore_ms = 0.0;  // Engine-priced swap-in of one `ctx`-token branch.
  bool lossless_exact = false;
};

/// Encodes + decodes `pages` real-geometry pages through the codec tier and
/// reports the realized multiplier, accuracy proxy, and bit-exactness.
CodecRow MeasureCodec(const KvCodecConfig& codec, int64_t pages, Rng& rng) {
  CodecRow row;
  PagedKVCache kv(DType::kF16, kHeads, kDim, kPage, pages + 2, pages, codec);
  const int seq = kv.CreateSequence();
  FillSequence(kv, seq, pages * kPage, rng);

  // Snapshot the raw bytes of the first page for the bit-exactness probe.
  const int64_t page0 = kv.SequencePages(seq)[0];
  std::vector<float> before;
  for (int h = 0; h < kHeads; ++h) {
    for (int d = 0; d < kDim; ++d) {
      before.push_back(kv.KAt(page0, h, 0, d));
      before.push_back(kv.VAt(page0, h, 7, d));
    }
  }

  const auto st = kv.EvictSequenceEx(seq);
  row.multiplier = st.stored_bytes > 0
                       ? static_cast<double>(st.logical_bytes) /
                             static_cast<double>(st.stored_bytes)
                       : 0.0;
  row.mean_mse = st.mse_pages > 0 ? st.mse_sum / static_cast<double>(st.mse_pages) : 0.0;
  const auto rt = kv.RestoreSequenceEx(seq);
  row.lossless_exact = rt.pages == pages;
  const int64_t page0b = kv.SequencePages(seq)[0];
  size_t i = 0;
  for (int h = 0; h < kHeads && row.lossless_exact; ++h) {
    for (int d = 0; d < kDim; ++d) {
      // Bit-exact for the lossless path; bounded for quantized configs.
      const float ka = kv.KAt(page0b, h, 0, d);
      const float va = kv.VAt(page0b, h, 7, d);
      const float ke = before[i++];
      const float ve = before[i++];
      if (codec.quant == KvQuantFormat::kNone) {
        if (half_t(ka).bits != half_t(ke).bits || half_t(va).bits != half_t(ve).bits) {
          row.lossless_exact = false;
        }
      } else if (std::abs(ka - ke) > 0.25f || std::abs(va - ve) > 0.25f) {
        row.lossless_exact = false;
      }
    }
  }
  return row;
}

std::vector<Request> PressureWorkload(int n) {
  Rng rng(13);
  auto reqs = UniformWorkload(rng, n, 25.0, 512, 1024, 96);
  AssignPriorities(rng, reqs, {0.7, 0.3});
  return reqs;
}

ServingMetrics RunEngine(const std::vector<Request>& reqs, KvCodecConfig codec,
                         double host_gb) {
  EngineConfig cfg = BaseConfig();
  cfg.preemption.enabled = true;
  cfg.preemption.restore = RestorePolicy::kSwap;
  cfg.preemption.host_capacity_gb = host_gb;
  cfg.preemption.host_codec = codec;
  cfg.hbm_capacity_gb = HbmForBudget(cfg, 8000);
  return ServingEngine(cfg).Run(reqs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");

  bench::Banner("KV quant",
                "quantized + compressed host KV tier: capacity x accuracy x latency");
  bench::Note("Part 1 encodes real-geometry KV pages (8 KV heads x 128 dim, f16,");
  bench::Note("64 KiB pages) through each codec config; part 2 runs the serving");
  bench::Note("engine under KV pressure with the codec tier on, same nominal host");
  bench::Note("capacity, and meters stored bytes, decode-priced restores, and the");
  bench::Note("quantization-MSE accuracy proxy.");

  bench::JsonResult json;
  json.Add("bench", std::string("kv_quant"));
  json.Add("quick", quick ? 1.0 : 0.0);

  // --- 1. Page-codec sweep at real geometry -------------------------------
  const int64_t pages = quick ? 64 : 256;
  const std::vector<CodecPoint> points = {
      {"none", {KvQuantFormat::kNone, false}},
      {"lz4", {KvQuantFormat::kNone, true}},
      {"int8", {KvQuantFormat::kInt8, false}},
      {"int8+lz4", {KvQuantFormat::kInt8, true}},
      {"fp8e4m3", {KvQuantFormat::kFp8E4M3, false}},
      {"fp8e4m3+lz4", {KvQuantFormat::kFp8E4M3, true}},
  };
  std::printf("\n--- page codec at real geometry (%lld pages, 64 KiB each) ---\n",
              static_cast<long long>(pages));
  AsciiTable ct({"codec", "capacity x", "mean page MSE", "round trip"});
  double none_mult = 0.0, int8lz4_mult = 0.0, int8lz4_mse = 0.0;
  bool lossless_ok = true, quant_bounded = true;
  Rng rng(0x5EED);
  for (const auto& p : points) {
    const auto row = MeasureCodec(p.cfg, pages, rng);
    ct.AddRow({p.name, AsciiTable::Num(row.multiplier, 2),
               p.cfg.quant == KvQuantFormat::kNone
                   ? std::string("0 (lossless)")
                   : AsciiTable::Num(row.mean_mse, 6),
               row.lossless_exact ? "exact/bounded" : "MISMATCH"});
    if (!row.lossless_exact) {
      (p.cfg.quant == KvQuantFormat::kNone ? lossless_ok : quant_bounded) = false;
    }
    if (std::strcmp(p.name, "none") == 0) none_mult = row.multiplier;
    if (std::strcmp(p.name, "int8+lz4") == 0) {
      int8lz4_mult = row.multiplier;
      int8lz4_mse = row.mean_mse;
    }
    json.Add(std::string("capacity_x_") + p.name, row.multiplier);
    if (p.cfg.quant != KvQuantFormat::kNone) {
      json.Add(std::string("mse_") + p.name, row.mean_mse);
    }
  }
  ct.Print();

  // Acceptance: >= 2x effective host capacity at a bounded accuracy proxy;
  // raw storage pays only the per-page header (multiplier ~1).
  const bool gate_capacity = int8lz4_mult >= 2.0;
  const bool gate_proxy = int8lz4_mse > 0.0 && int8lz4_mse < 1e-3;
  std::printf("\nint8+lz4: %.2fx capacity (acceptance: >= 2x), mean page MSE %.2e"
              " (acceptance: < 1e-3): %s\n",
              int8lz4_mult, int8lz4_mse,
              gate_capacity && gate_proxy ? "yes" : "NO");
  std::printf("lossless paths bit-exact: %s; quantized paths bounded: %s\n",
              lossless_ok ? "yes" : "NO", quant_bounded ? "yes" : "NO");
  json.Add("gate_capacity_2x", gate_capacity ? 1.0 : 0.0);
  json.Add("gate_accuracy_proxy_bounded", gate_proxy ? 1.0 : 0.0);
  json.Add("gate_lossless_exact", lossless_ok ? 1.0 : 0.0);
  json.Add("raw_multiplier", none_mult);

  // --- 2. Engine sweep: codec tier under KV pressure ----------------------
  std::printf("\n--- engine under KV pressure (tight host tier, kSwap) ---\n");
  // The workload/host-tier geometry is fixed (quick only scales part 1):
  // this pairing is tuned so the raw tier exhausts its host budget and
  // spills at least one victim to recompute, which the codec tier's stored-
  // byte metering then converts back to a swap.
  const auto reqs = PressureWorkload(40);
  const double host_gb = 0.3;
  const auto raw = RunEngine(reqs, {}, host_gb);
  const auto enc =
      RunEngine(reqs, {KvQuantFormat::kInt8, /*compress=*/true}, host_gb);

  AsciiTable et({"tier", "tok/s", "swap restores", "recompute restores",
                 "stored/logical", "decode ms", "mean page MSE"});
  for (const auto* m : {&raw, &enc}) {
    et.AddRow({m == &raw ? "raw" : "int8+lz4",
               AsciiTable::Num(m->ThroughputTokS(), 0),
               AsciiTable::Num(static_cast<double>(m->num_swap_restores), 0),
               AsciiTable::Num(static_cast<double>(m->num_recompute_restores), 0),
               AsciiTable::Num(m->HostStoredRatio(), 3),
               AsciiTable::Num(m->codec_decode_ms, 2),
               AsciiTable::Num(m->MeanPageQuantMse(), 6)});
  }
  et.Print();

  // Codec-off must be bit-identical to a default-config run: the codec
  // knobs are dead until host_codec enables them (the bugfix pin).
  EngineConfig base_cfg = BaseConfig();
  base_cfg.preemption.enabled = true;
  base_cfg.preemption.restore = RestorePolicy::kSwap;
  base_cfg.preemption.host_capacity_gb = host_gb;
  base_cfg.preemption.codec_encode_gbps = 1.0;  // Dead knob codec-off.
  base_cfg.hbm_capacity_gb = HbmForBudget(base_cfg, 8000);
  const auto pin = ServingEngine(base_cfg).Run(reqs);
  const bool gate_identical = pin.makespan_s == raw.makespan_s &&
                              pin.total_swap_ms == raw.total_swap_ms &&
                              pin.num_swap_restores == raw.num_swap_restores;

  const bool gate_swaps = enc.num_swap_restores > raw.num_swap_restores &&
                          enc.num_recompute_restores < raw.num_recompute_restores;
  const bool gate_decode = enc.codec_decode_ms > 0.0 && raw.codec_decode_ms == 0.0;
  const bool gate_ratio = enc.HostStoredRatio() < 1.0 && raw.HostStoredRatio() == 1.0;
  std::printf("\ncodec tier converts recompute restores into swaps on the same host"
              " budget: %s\n", gate_swaps ? "yes" : "NO");
  std::printf("decode priced into restores (codec on only): %s; stored < logical"
              " (codec on only): %s; codec-off bit-identical: %s\n",
              gate_decode ? "yes" : "NO", gate_ratio ? "yes" : "NO",
              gate_identical ? "yes" : "NO");
  json.Add("raw_tok_s", raw.ThroughputTokS());
  json.Add("codec_tok_s", enc.ThroughputTokS());
  json.Add("raw_swap_restores", static_cast<double>(raw.num_swap_restores));
  json.Add("codec_swap_restores", static_cast<double>(enc.num_swap_restores));
  json.Add("codec_stored_ratio", enc.HostStoredRatio());
  json.Add("codec_decode_ms", enc.codec_decode_ms);
  json.Add("codec_mean_page_mse", enc.MeanPageQuantMse());
  json.Add("gate_codec_converts_recompute", gate_swaps ? 1.0 : 0.0);
  json.Add("gate_decode_priced", gate_decode ? 1.0 : 0.0);
  json.Add("gate_stored_lt_logical", gate_ratio ? 1.0 : 0.0);
  json.Add("gate_codec_off_identical", gate_identical ? 1.0 : 0.0);

  const bool ok = gate_capacity && gate_proxy && lossless_ok && quant_bounded &&
                  gate_swaps && gate_decode && gate_ratio && gate_identical;
  json.Add("acceptance_passed", ok ? 1.0 : 0.0);
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (!ok) {
    std::printf("ACCEPTANCE FAILED\n");
    return 1;
  }
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json)) return 1;
  }
  return 0;
}
