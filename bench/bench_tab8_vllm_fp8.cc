// Table 8 (Appendix G.4): vLLM integration with bf16 and fp8 KV-caches.
//
// FlashInfer's mixed-precision kernels (fp16 Q/O, fp8 KV — Appendix F) halve
// KV traffic; the vLLM-default backend's fp8 path dequantizes less
// efficiently. With bf16 the kernels tie and FlashInfer's extra Python
// bookkeeping in the vLLM integration shows up as a slight ITL regression —
// the paper's own observed artifact.
#include "bench_common.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

int main() {
  bench::Banner("Table 8", "vLLM integration: throughput / median ITL / median TTFT");
  bench::Note("Llama 3.1 8B, simulated 1xH100, ShareGPT-like @ RR=16; cells: measured (paper)");

  Rng rng(55);
  const auto workload = ShareGptWorkload(rng, 250, 16.0);

  struct Case {
    const char* name;
    BackendConfig backend;
    double paper_tput, paper_itl, paper_ttft;
  };

  // vLLM's default attention backend (FlashAttention-derived, own split-K).
  auto vllm_bf16 = VllmDefaultBackend();
  vllm_bf16.kv_dtype = DType::kBF16;
  vllm_bf16.scheduler = SchedulerKind::kFixedSplit;
  vllm_bf16.kernel_time_scale = 1.0;
  auto vllm_fp8 = vllm_bf16;
  // Default fp8 path: dequantize-to-bf16 outside the MMA pipeline; the
  // conversion work more than cancels the halved KV traffic (the paper's
  // 10.42 -> 12.56 ms regression).
  vllm_fp8.kv_dtype = DType::kFP8_E4M3;
  vllm_fp8.kernel_time_scale = 2.6;

  // FlashInfer inside vLLM: balanced scheduler and fused kernels, but the
  // integration layer's Python array bookkeeping adds per-request host time
  // (Appendix G.4: "heavy Python overhead ... causes minor regressions").
  auto fi_bf16 = FlashInferBackend();
  fi_bf16.name = "FlashInfer (bf16)";
  fi_bf16.kv_dtype = DType::kBF16;
  fi_bf16.host_us_per_req = 22.0;
  fi_bf16.host_us_per_step = 300.0;
  auto fi_fp8 = fi_bf16;
  fi_fp8.name = "FlashInfer (e4m3)";
  fi_fp8.kv_dtype = DType::kFP8_E4M3;
  // Hardware fp8 tensor paths still pay fragment-shuffle dequant (App. F).
  fi_fp8.kernel_time_scale = 1.18;

  const Case cases[] = {
      {"Default (bf16)", vllm_bf16, 6062.89, 10.42, 35.85},
      {"FlashInfer (bf16)", fi_bf16, 6065.41, 10.63, 36.60},
      {"Default (e4m3)", vllm_fp8, 6015.86, 12.56, 39.74},
      {"FlashInfer (e4m3)", fi_fp8, 6020.32, 10.92, 37.93},
  };

  AsciiTable t({"backend", "throughput (tok/s)", "median ITL (ms)", "median TTFT (ms)"});
  for (const auto& c : cases) {
    EngineConfig cfg;
    cfg.model = Llama31_8B();
    cfg.device = gpusim::H100Sxm80GB();
    cfg.backend = c.backend;
    const auto m = ServingEngine(cfg).Run(workload);
    t.AddRow({c.name, WithPaper(m.ThroughputTokS(), c.paper_tput, 0),
              WithPaper(m.MedianItlMs(), c.paper_itl, 2),
              WithPaper(m.MedianTtftMs(), c.paper_ttft, 2)});
  }
  t.Print();
  return 0;
}
