// Real-time CPU micro-benchmarks (google-benchmark) of the actual kernels.
//
// Everything else in bench/ reports simulated-device numbers; this binary
// measures the real C++ implementations on the host CPU. The headline
// comparison is compiled (template-specialized) vs interpreted
// (std::function hooks) variant dispatch over the identical micro-kernel —
// the CPU analog of the FlashInfer-vs-FlexAttention gap of Tables 1-4 —
// plus the cost of the supporting machinery: sparse gather, state merging,
// scheduling (plan time), and radix-tree matching.
#include <benchmark/benchmark.h>

#include "core/attention_state.h"
#include "core/kernel_dispatch.h"
#include "core/microkernel.h"
#include "jit/interpreted.h"
#include "kvcache/radix.h"
#include "runtime/scheduler.h"
#include "sparse/gather.h"
#include "util/rng.h"

// The shared problem fixture lives with the tests; reuse it here.
#include "../tests/test_util.h"

namespace flashinfer {
namespace {

test::Problem MakeDecodeProblem(int batch, int64_t kv_len) {
  test::ProblemSpec spec;
  spec.qo_lens.assign(static_cast<size_t>(batch), 1);
  spec.kv_lens.assign(static_cast<size_t>(batch), kv_len);
  spec.num_qo_heads = 8;
  spec.num_kv_heads = 2;
  spec.head_dim = 64;
  spec.page_size = 16;
  spec.kv_dtype = DType::kF16;
  spec.tile_q = 4;
  return test::MakeProblem(spec);
}

void BM_DecodeCompiledVariant(benchmark::State& state) {
  auto prob = MakeDecodeProblem(4, state.range(0));
  auto p = prob.Params();
  p.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 4;
  auto fn = GetBuiltinKernel(VariantKind::kVanilla, DType::kF16);
  for (auto _ : state) {
    test::RunSerial(p, cfg, fn);
    benchmark::DoNotOptimize(prob.o.data.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * state.range(0));
}
BENCHMARK(BM_DecodeCompiledVariant)->Arg(256)->Arg(1024);

void BM_DecodeInterpretedVariant(benchmark::State& state) {
  // FlexAttention-style: identical math, every logit routed through
  // std::function hooks.
  jit::SetInterpretedHooks({});
  auto prob = MakeDecodeProblem(4, state.range(0));
  auto p = prob.Params();
  p.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 4;
  jit::InterpretedHooks hooks;
  hooks.logits_transform = [](const VariantParams& vp, float logit, const LogitsCtx&) {
    return logit * vp.sm_scale;
  };
  hooks.logits_mask = [](const VariantParams& vp, const LogitsCtx& ctx) {
    return DefaultMask(vp, ctx);
  };
  jit::SetInterpretedHooks(hooks);
  auto fn = jit::GetInterpretedKernel(true, false, DType::kF16);
  for (auto _ : state) {
    test::RunSerial(p, cfg, fn);
    benchmark::DoNotOptimize(prob.o.data.data());
  }
  jit::SetInterpretedHooks({});
  state.SetItemsProcessed(state.iterations() * 4 * state.range(0));
}
BENCHMARK(BM_DecodeInterpretedVariant)->Arg(256)->Arg(1024);

void BM_PrefillCompiled(benchmark::State& state) {
  test::ProblemSpec spec;
  spec.qo_lens = {state.range(0)};
  spec.kv_lens = {state.range(0)};
  spec.num_qo_heads = 4;
  spec.num_kv_heads = 4;
  spec.head_dim = 64;
  spec.page_size = 16;
  spec.kv_dtype = DType::kF16;
  spec.tile_q = 16;
  auto prob = test::MakeProblem(spec);
  auto p = prob.Params();
  p.variant.causal = true;
  KernelConfig cfg;
  cfg.tile_q = 16;
  cfg.tile_kv = 64;
  auto fn = GetBuiltinKernel(VariantKind::kVanilla, DType::kF16);
  for (auto _ : state) {
    test::RunSerial(p, cfg, fn);
    benchmark::DoNotOptimize(prob.o.data.data());
  }
  const double flops = 4.0 * spec.num_qo_heads * 64.0 * state.range(0) * state.range(0) / 2.0;
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrefillCompiled)->Arg(128)->Arg(512);

void BM_FusedRopeVariant(benchmark::State& state) {
  auto prob = MakeDecodeProblem(4, 512);
  auto p = prob.Params();
  p.variant.rope_theta = 10000.0f;
  KernelConfig cfg;
  cfg.tile_q = 4;
  auto fn = GetBuiltinKernel(VariantKind::kFusedRope, DType::kF16);
  for (auto _ : state) {
    test::RunSerial(p, cfg, fn);
    benchmark::DoNotOptimize(prob.o.data.data());
  }
}
BENCHMARK(BM_FusedRopeVariant);

void BM_GatherRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> src(static_cast<size_t>(n) * 64);
  Rng rng(5);
  std::vector<const float*> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(src.data() + rng.UniformInt(0, n - 1) * 64);
  }
  std::vector<float> dst(static_cast<size_t>(n) * 64);
  for (auto _ : state) {
    sparse::GatherRows<float>(rows, 64, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * int64_t{n} * 64 * sizeof(float));
}
BENCHMARK(BM_GatherRows)->Arg(128)->Arg(4096);

void BM_MergeStates(benchmark::State& state) {
  Rng rng(7);
  const int d = 128;
  std::vector<AttentionState> parts;
  for (int i = 0; i < 8; ++i) {
    AttentionState s = AttentionState::Identity(d);
    for (auto& x : s.o) x = static_cast<float>(rng.Normal(0, 1));
    s.lse = static_cast<float>(rng.Normal(0, 2));
    parts.push_back(std::move(s));
  }
  for (auto _ : state) {
    auto merged = MergeAll(parts, d);
    benchmark::DoNotOptimize(merged.o.data());
  }
}
BENCHMARK(BM_MergeStates);

void BM_BalancedPlan(benchmark::State& state) {
  // The per-generation-step inspector cost (Sec. 3.3: runs on CPU each step,
  // amortized over layers through the plan cache).
  auto prob = MakeDecodeProblem(static_cast<int>(state.range(0)), 1024);
  auto p = prob.Params();
  KernelConfig cfg;
  cfg.tile_q = 4;
  cfg.tile_kv = 64;
  for (auto _ : state) {
    auto plan = MakeBalancedPlan(p, cfg, 132, int64_t{1} << 40);
    benchmark::DoNotOptimize(plan.cta_queues.data());
  }
}
BENCHMARK(BM_BalancedPlan)->Arg(8)->Arg(64)->Arg(256);

void BM_RadixMatch(benchmark::State& state) {
  RadixTree tree(16);
  Rng rng(11);
  std::vector<int32_t> prefix(1024);
  for (auto& t : prefix) t = static_cast<int32_t>(rng.UniformInt(0, 31999));
  std::vector<int64_t> pages(64);
  for (size_t i = 0; i < pages.size(); ++i) pages[i] = static_cast<int64_t>(i);
  tree.Insert(prefix, pages);
  for (auto _ : state) {
    auto m = tree.MatchPrefix(prefix);
    benchmark::DoNotOptimize(m.pages.data());
  }
}
BENCHMARK(BM_RadixMatch);

}  // namespace
}  // namespace flashinfer

BENCHMARK_MAIN();
