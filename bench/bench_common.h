// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: it builds the same workload, runs it through the engine (real
// scheduler + kernel cost model on the simulated device), and prints the
// measured rows next to the paper's published values so the shape comparison
// is immediate. Absolute numbers are not expected to match (simulated device
// vs. the authors' testbed); orderings, ratios, and crossovers are.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "util/json.h"
#include "util/table.h"

namespace flashinfer::bench {

/// Returns the value following `flag` in argv, or nullptr when absent
/// (e.g. ArgValue(argc, argv, "--json") -> the output path).
inline const char* ArgValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Minimal machine-readable results sink: a flat ordered JSON object of
/// numeric (and string) fields, written when a path was given. Every bench
/// that gates acceptance emits one so the perf trajectory across PRs can be
/// scraped into BENCH_*.json without parsing ASCII tables.
class JsonResult {
 public:
  void Add(const std::string& key, double value) {
    fields_.emplace_back(key, util::JsonNum(value));
  }
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + util::JsonEscape(value) + "\"");
  }

  /// Writes `{ "k": v, ... }`; returns false (with a message) on I/O error.
  /// No-op returning true when `path` is null.
  bool WriteTo(const char* path) const {
    if (path == nullptr) return true;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON results to %s\n", path);
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", util::JsonEscape(fields_[i].first).c_str(),
                   fields_[i].second.c_str(), i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("JSON results written to %s\n", path);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

inline void Banner(const char* id, const char* title) {
  std::printf("\n=============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("=============================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

/// "measured (paper X)" cell.
inline std::string WithPaper(double measured, double paper, int digits = 1) {
  return AsciiTable::Num(measured, digits) + " (" + AsciiTable::Num(paper, digits) + ")";
}

inline std::string Pct(double frac, int digits = 0) {
  return AsciiTable::Num(100.0 * frac, digits);
}

inline std::string PctWithPaper(double frac, double paper_pct, int digits = 0) {
  return Pct(frac, digits) + " (" + AsciiTable::Num(paper_pct, digits) + ")";
}

}  // namespace flashinfer::bench
