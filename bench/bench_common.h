// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: it builds the same workload, runs it through the engine (real
// scheduler + kernel cost model on the simulated device), and prints the
// measured rows next to the paper's published values so the shape comparison
// is immediate. Absolute numbers are not expected to match (simulated device
// vs. the authors' testbed); orderings, ratios, and crossovers are.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "util/json.h"
#include "util/table.h"

namespace flashinfer::bench {

/// Real (host) wall-clock stopwatch. Simulated time is derived from the cost
/// model and is byte-reproducible; wall time measures how fast the simulator
/// itself runs — the quantity the parallel cluster driver exists to improve.
/// Every bench JSON carries a `wall_ms` so the perf trajectory of the
/// *harness* is scraped alongside the simulated metrics.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Returns the value following `flag` in argv, or nullptr when absent
/// (e.g. ArgValue(argc, argv, "--json") -> the output path).
inline const char* ArgValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Minimal machine-readable results sink: a flat ordered JSON object of
/// numeric (and string) fields, written when a path was given. Every bench
/// that gates acceptance emits one so the perf trajectory across PRs can be
/// scraped into BENCH_*.json without parsing ASCII tables.
class JsonResult {
 public:
  void Add(const std::string& key, double value) {
    fields_.emplace_back(key, util::JsonNum(value));
    numbers_.emplace_back(key, value);
  }
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + util::JsonEscape(value) + "\"");
  }

  /// Numeric lookup for the baseline checker. Returns false when `key` was
  /// never Add()ed as a number.
  bool Lookup(const std::string& key, double* out) const {
    for (const auto& [k, v] : numbers_) {
      if (k == key) {
        *out = v;
        return true;
      }
    }
    return false;
  }

  /// Writes `{ "k": v, ... }`; returns false (with a message) on I/O error.
  /// No-op returning true when `path` is null.
  bool WriteTo(const char* path) const {
    if (path == nullptr) return true;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON results to %s\n", path);
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", util::JsonEscape(fields_[i].first).c_str(),
                   fields_[i].second.c_str(), i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("JSON results written to %s\n", path);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<std::pair<std::string, double>> numbers_;
};

/// Compares a bench's measured JsonResult against a committed baseline file —
/// the CI perf-regression gate. The baseline is a JSON object mapping metric
/// keys to `{"value": v, "rel_tol": r, "dir": "higher"|"lower"|"both"}`:
///
///   * dir "higher": the metric is good-when-high (throughput, speedup) —
///     FAIL when measured < value * (1 - rel_tol).
///   * dir "lower": good-when-low (latency, wedges) — FAIL when
///     measured > value * (1 + rel_tol).
///   * dir "both" (default): FAIL when |measured - value| > rel_tol * max(
///     |value|, 1e-12) — for determinism pins like gate booleans.
///
/// A baseline key missing from the measured result FAILS (a renamed or
/// dropped gate metric must be a conscious baseline update). Prints one
/// PASS/FAIL row per key and returns overall pass. Deterministic seeded
/// benches on a simulated device make tight tolerances safe: there is no
/// machine noise to absorb, only real behavior changes.
///
/// Wall-clock keys (any key containing "wall") are host-dependent noise:
/// pinning one turns CI into a machine-speed lottery, and a slow runner
/// "passes" a real regression while a fast one fails a clean build. A
/// baseline that names such a key therefore FAILS LOUDLY unless the caller
/// opts in with `allow_wall_keys` — only bench_parallel_scale does, whose
/// entire subject is the harness's own wall-clock scaling.
inline bool CheckBaseline(const char* baseline_path, const JsonResult& result,
                          bool allow_wall_keys = false) {
  std::FILE* f = std::fopen(baseline_path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "baseline check: cannot open %s\n", baseline_path);
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  util::JsonValue doc;
  std::string err;
  if (!util::JsonParse(text, &doc, &err) || !doc.IsObject()) {
    std::fprintf(stderr, "baseline check: %s: %s\n", baseline_path, err.c_str());
    return false;
  }

  std::printf("\nbaseline check vs %s:\n", baseline_path);
  bool ok = true;
  for (const auto& [key, spec] : doc.obj) {
    if (!spec.IsObject()) continue;  // Allow top-level comment strings.
    if (!allow_wall_keys && key.find("wall") != std::string::npos) {
      std::printf("  %-34s FAIL baseline pins a wall-clock key — host-"
                  "dependent, not a regression gate; remove it from the "
                  "baseline (or gate it in bench_parallel_scale, the one "
                  "harness whose subject is wall-clock scaling)\n",
                  key.c_str());
      ok = false;
      continue;
    }
    const double value = spec.NumberOr("value", 0.0);
    const double tol = spec.NumberOr("rel_tol", 0.05);
    const std::string dir = spec.StringOr("dir", "both");
    double measured = 0.0;
    bool pass;
    std::string detail;
    if (!result.Lookup(key, &measured)) {
      pass = false;
      detail = "metric missing from results";
    } else if (dir == "higher") {
      pass = measured >= value * (1.0 - tol);
      detail = "must be >= " + util::JsonNum(value * (1.0 - tol));
    } else if (dir == "lower") {
      pass = measured <= value * (1.0 + tol);
      detail = "must be <= " + util::JsonNum(value * (1.0 + tol));
    } else {
      const double scale = std::abs(value) > 1e-12 ? std::abs(value) : 1e-12;
      pass = std::abs(measured - value) <= tol * scale;
      detail = "must be within " + util::JsonNum(100.0 * tol) + "% of " +
               util::JsonNum(value);
    }
    std::printf("  %-34s %-4s measured=%-12.6g baseline=%-12.6g (%s)\n", key.c_str(),
                pass ? "ok" : "FAIL", measured, value, detail.c_str());
    ok = ok && pass;
  }
  std::printf("baseline check: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

inline void Banner(const char* id, const char* title) {
  std::printf("\n=============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("=============================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

/// "measured (paper X)" cell.
inline std::string WithPaper(double measured, double paper, int digits = 1) {
  return AsciiTable::Num(measured, digits) + " (" + AsciiTable::Num(paper, digits) + ")";
}

inline std::string Pct(double frac, int digits = 0) {
  return AsciiTable::Num(100.0 * frac, digits);
}

inline std::string PctWithPaper(double frac, double paper_pct, int digits = 0) {
  return Pct(frac, digits) + " (" + AsciiTable::Num(paper_pct, digits) + ")";
}

}  // namespace flashinfer::bench
