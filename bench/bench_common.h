// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation: it builds the same workload, runs it through the engine (real
// scheduler + kernel cost model on the simulated device), and prints the
// measured rows next to the paper's published values so the shape comparison
// is immediate. Absolute numbers are not expected to match (simulated device
// vs. the authors' testbed); orderings, ratios, and crossovers are.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "util/table.h"

namespace flashinfer::bench {

inline void Banner(const char* id, const char* title) {
  std::printf("\n=============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("=============================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

/// "measured (paper X)" cell.
inline std::string WithPaper(double measured, double paper, int digits = 1) {
  return AsciiTable::Num(measured, digits) + " (" + AsciiTable::Num(paper, digits) + ")";
}

inline std::string Pct(double frac, int digits = 0) {
  return AsciiTable::Num(100.0 * frac, digits);
}

inline std::string PctWithPaper(double frac, double paper_pct, int digits = 0) {
  return Pct(frac, digits) + " (" + AsciiTable::Num(paper_pct, digits) + ")";
}

}  // namespace flashinfer::bench
