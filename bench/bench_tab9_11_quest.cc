// Tables 9-11 (Appendix G.5): fine-grained block sparsity (Quest).
//
// Batch-1 decode over a pruned KV-cache with block size 16: FlashInfer's
// vector-sparse gather executes exactly `page_budget` pages regardless of
// sequence length. Baselines: PyTorch SDPA (dense attention over the whole
// sequence — latency scales with seq_len) and FlexAttention (block-128
// templates: the 16-token page selection is rounded up to 128-blocks, 8x
// the work, plus ~1 ms of Triton block-mask construction per call).
#include "bench_common.h"
#include "serving/backends.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

constexpr int64_t kSeqLens[] = {4096, 8192, 16384, 32768};
constexpr int kBudgets[] = {64, 128, 256, 512};

// Per-call cost of the standalone kernel benchmark (launch + sync), us.
constexpr double kHarnessUs = 14.0;

double FlashInferUs(const gpusim::DeviceSpec& dev, int64_t seq, int budget) {
  AttnSimInput in;
  in.qo_lens = {1};
  // The kernel touches only the selected pages: budget x 16 tokens.
  in.kv_lens = {std::min<int64_t>(seq, static_cast<int64_t>(budget) * 16)};
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  in.page_size = 16;
  in.causal = false;  // Selected pages are all visible.
  return SimulateBatchAttention(dev, FlashInferBackend(), in).time_us + kHarnessUs;
}

double SdpaUs(const gpusim::DeviceSpec& dev, int64_t seq) {
  // Dense attention over the full sequence, ignoring sparsity.
  AttnSimInput in;
  in.qo_lens = {1};
  in.kv_lens = {seq};
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  in.force_dense = true;
  in.page_size = 128;
  auto backend = FlashAttentionBackend();  // Per-(head) CTA grid, no split.
  // Eager SDPA runs unfused QK^T / softmax / PV passes over GEMV-shaped
  // operands; cuBLAS batched kernels reach roughly half the streaming
  // efficiency of a fused attention kernel on these shapes.
  backend.kernel_time_scale = 2.05;
  return SimulateBatchAttention(dev, backend, in).time_us + kHarnessUs;
}

double FlexUs(const gpusim::DeviceSpec& dev, int64_t seq, int budget) {
  // Block-128 template: each selected 16-token page drags in a 128-token
  // block (capped at the sequence length).
  const int64_t touched = std::min<int64_t>(seq, static_cast<int64_t>(budget) * 128);
  AttnSimInput in;
  in.qo_lens = {1};
  in.kv_lens = {touched};
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  in.page_size = 128;
  in.force_template = 2;  // Triton: FA2-class efficiency on Hopper.
  auto backend = FlashInferBackend();
  backend.kernel_time_scale = 1.12;
  const double kernel = SimulateBatchAttention(dev, backend, in).time_us;
  // Triton-side BlockMask construction dominates at these sizes (~1 ms,
  // roughly constant — matches the flat latencies of Table 11).
  return kernel + 1050.0;
}

}  // namespace

int main() {
  bench::Banner("Tables 9-11", "Quest fine-grained sparsity: decode latency (us)");
  bench::Note("batch 1, block 16, 32 qo/32 kv heads, head_dim 128, H100 SXM;");
  bench::Note("cells: measured (paper)");
  const auto dev = gpusim::H100Sxm80GB();

  const double paper_fi[4][4] = {{20.3, 30.4, 44.4, 44.4},
                                 {22.3, 28.6, 44.9, 68.2},
                                 {20.5, 28.7, 44.7, 68.7},
                                 {22.4, 28.7, 45.0, 68.5}};
  const double paper_sdpa[4] = {287.7, 474.6, 857.3, 1712.0};
  const double paper_flex[4][4] = {{1100.3, 1097.4, 1073.8, 1071.8},
                                   {1092.7, 1099.1, 1078.1, 1074.9},
                                   {1109.8, 1101.5, 1077.6, 1076.9},
                                   {1169.1, 1187.4, 1176.3, 1174.5}};

  std::printf("\n--- Table 9: FlashInfer (vector-sparse, page 16) ---\n");
  AsciiTable t9({"seq_len", "budget 64", "budget 128", "budget 256", "budget 512"});
  for (size_t i = 0; i < std::size(kSeqLens); ++i) {
    std::vector<std::string> row{std::to_string(kSeqLens[i])};
    for (size_t b = 0; b < std::size(kBudgets); ++b) {
      row.push_back(WithPaper(FlashInferUs(dev, kSeqLens[i], kBudgets[b]), paper_fi[i][b]));
    }
    t9.AddRow(row);
  }
  t9.Print();

  std::printf("\n--- Table 10: PyTorch SDPA (dense, budget-independent) ---\n");
  AsciiTable t10({"seq_len", "latency"});
  for (size_t i = 0; i < std::size(kSeqLens); ++i) {
    t10.AddRow({std::to_string(kSeqLens[i]), WithPaper(SdpaUs(dev, kSeqLens[i]), paper_sdpa[i])});
  }
  t10.Print();

  std::printf("\n--- Table 11: FlexAttention (block-128 template) ---\n");
  AsciiTable t11({"seq_len", "budget 64", "budget 128", "budget 256", "budget 512"});
  for (size_t i = 0; i < std::size(kSeqLens); ++i) {
    std::vector<std::string> row{std::to_string(kSeqLens[i])};
    for (size_t b = 0; b < std::size(kBudgets); ++b) {
      row.push_back(WithPaper(FlexUs(dev, kSeqLens[i], kBudgets[b]), paper_flex[i][b]));
    }
    t11.AddRow(row);
  }
  t11.Print();

  std::printf("\nFlashInfer vs SDPA at 32768/budget 512: %.1fx faster; vs FlexAttention: %.1fx\n",
              SdpaUs(dev, 32768) / FlashInferUs(dev, 32768, 512),
              FlexUs(dev, 32768, 512) / FlashInferUs(dev, 32768, 512));
  return 0;
}
