// Table 5 (Appendix G.2): shared-prefix attention kernels.
//
// Batch decode where every request shares one prefix (suffix length 128).
// Composable format: the prefix is processed once per group at Br = batch
// (shared-memory reuse); single format: every request's CTA re-reads the
// prefix (first read from HBM, repeats from L2). The composable advantage
// grows with prefix length and batch size.
#include "bench_common.h"
#include "serving/backends.h"

using namespace flashinfer;
using namespace flashinfer::serving;
using bench::WithPaper;

namespace {

double KernelLatencyUs(const gpusim::DeviceSpec& dev, int batch, int64_t prefix,
                       bool composable) {
  AttnSimInput in;
  in.qo_lens.assign(static_cast<size_t>(batch), 1);
  in.kv_lens.assign(static_cast<size_t>(batch), prefix + 128);
  in.num_qo_heads = 32;
  in.num_kv_heads = 32;
  in.head_dim = 128;
  auto backend = FlashInferBackend();
  if (composable) {
    backend.composable = true;
    AttnSimInput::Group g;
    g.prefix_len = prefix;
    for (int i = 0; i < batch; ++i) g.members.push_back(i);
    in.groups.push_back(g);
  } else {
    // Single format: all CTAs read the same prefix pages; all but the first
    // read hit L2.
    const double dup = static_cast<double>(prefix) * (batch - 1);
    const double total = static_cast<double>(prefix + 128) * batch;
    in.kv_l2_fraction = dup / total;
  }
  return SimulateBatchAttention(dev, backend, in).time_us;
}

}  // namespace

int main() {
  bench::Banner("Table 5", "shared-prefix kernels: composable vs single format (latency, us)");
  bench::Note("32 heads, head_dim 128, suffix 128, H100 SXM; cells: measured (paper)");
  const auto dev = gpusim::H100Sxm80GB();

  const int64_t prefixes[] = {1024, 8192, 32768};
  const double paper[3][4] = {
      // composable BS16, single BS16, composable BS64, single BS64
      {45.17, 46.52, 87.86, 130.49},
      {88.67, 226.57, 125.76, 931.75},
      {217.42, 945.67, 254.54, 4090.0},
  };

  AsciiTable t({"prefix len", "composable (BS=16)", "single (BS=16)", "composable (BS=64)",
                "single (BS=64)"});
  for (size_t i = 0; i < std::size(prefixes); ++i) {
    const int64_t prefix = prefixes[i];
    t.AddRow({std::to_string(prefix),
              WithPaper(KernelLatencyUs(dev, 16, prefix, true), paper[i][0]),
              WithPaper(KernelLatencyUs(dev, 16, prefix, false), paper[i][1]),
              WithPaper(KernelLatencyUs(dev, 64, prefix, true), paper[i][2]),
              WithPaper(KernelLatencyUs(dev, 64, prefix, false), paper[i][3])});
  }
  t.Print();
  return 0;
}
