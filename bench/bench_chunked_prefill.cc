// Chunked prefill + mixed batching bench: P99 inter-token latency vs
// throughput on a bursty long-prompt mix, against the legacy prefill-alone
// engine (`prefill_chunk_tokens = 0`).
//
// Under prefill-alone, every burst of long prompts head-of-line-blocks the
// running decodes: branches stall through the burst's prefill steps and the
// ITL tail explodes. The StepPlan former instead feeds prompts into the
// running batch one chunk at a time, so every step mixes heterogeneous
// qo_lens — exactly the batch the paper's load-balanced scheduler (Sec.
// 3.3.1, Algorithm 1) absorbs in a single launch. The scheduler ablation
// extends Tables 6/7 to serving: on mixed chunk+decode batches the naive
// (FlashAttention-style, no KV splitting) scheduler pays visibly more
// attention time per step, so its end-to-end win from chunking is smaller
// than the balanced scheduler's.
//
// Gates (bursty workload, balanced scheduler, decode-priority policy):
//   - P99 ITL improves >= 2x at the headline chunk size vs prefill-alone,
//   - at within 5% of prefill-alone tokens/s,
//   - chunking eliminates every decode stall,
//   - naive-scheduler ablation: smaller P99 win + more attention time.
//
// Usage: bench_chunked_prefill [--quick] [--json <path>]
#include <string>

#include "bench_common.h"
#include "serving/engine.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

EngineConfig BaseConfig() {
  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  return cfg;
}

ServingMetrics RunWith(const std::vector<Request>& w, int64_t chunk,
                       BatchPolicy policy, SchedulerKind sched) {
  EngineConfig cfg = BaseConfig();
  cfg.prefill_chunk_tokens = chunk;
  cfg.batch_policy = policy;
  cfg.backend.scheduler = sched;
  return ServingEngine(cfg).Run(w);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::WallTimer wall_timer;
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  const char* json_path = bench::ArgValue(argc, argv, "--json");

  bench::Banner("Chunked prefill",
                "mixed prefill/decode batching through a unified StepPlan");
  bench::Note("Llama 3.1 8B on H100; steady short-prompt decode traffic overlaid");
  bench::Note("with bursts of 4k-8k-token prompts. chunk=0 is the legacy");
  bench::Note("prefill-alone loop (decodes stall behind each burst's prefill).");

  const int scale = quick ? 2 : 1;
  BurstyPrefillConfig wcfg;
  wcfg.num_steady = 240 / scale;
  wcfg.steady_rate = 40.0;
  wcfg.steady_output = 64;
  wcfg.num_bursts = 8 / scale;
  wcfg.burst_size = 6;
  wcfg.first_burst_s = 1.0;
  wcfg.burst_period_s = 1.0;
  wcfg.burst_input_lo = 4096;
  wcfg.burst_input_hi = 8192;

  bench::JsonResult json;
  json.Add("bench", std::string("chunked_prefill"));
  json.Add("quick", quick ? 1.0 : 0.0);

  // --- Burstiness x chunking: where does mixed batching pay? ---------------
  // Same 48 (24 quick) long prompts per horizon, arriving solo (smooth),
  // in threes, or in sixes. The win is NOT a burst artifact: even one 4k-8k
  // prompt arriving alone stalls every running decode for its whole prefill
  // under prefill-alone, so the tail explodes across the whole axis; bursts
  // concentrate the same stall time into fewer, longer episodes (higher max
  // ITL per episode, slightly lower P99).
  struct Burstiness {
    const char* name;
    int burst_size;
    int num_bursts;
    double period_s;
  };
  const Burstiness bursty_axis[] = {{"smooth", 1, 48 / scale, 1.0 / 6.0},
                                    {"medium", 3, 16 / scale, 0.5},
                                    {"bursty", 6, 8 / scale, 1.0}};
  const int64_t headline_chunk = 1024;

  std::printf("\n--- burstiness x chunking (chunk %lld, decode-priority) ---\n",
              static_cast<long long>(headline_chunk));
  AsciiTable bt({"arrivals", "mode", "tok/s", "P50 ITL", "P99 ITL", "max ITL",
                 "stalled steps"});
  for (const auto& ba : bursty_axis) {
    BurstyPrefillConfig c = wcfg;
    c.burst_size = ba.burst_size;
    c.num_bursts = ba.num_bursts;
    c.burst_period_s = ba.period_s;
    Rng rng(2027);
    const auto w = BurstyLongPrefillWorkload(rng, c);
    const auto alone =
        RunWith(w, 0, BatchPolicy::kDecodePriority, SchedulerKind::kBalanced);
    const auto chunked = RunWith(w, headline_chunk, BatchPolicy::kDecodePriority,
                                 SchedulerKind::kBalanced);
    for (const auto* p : {&alone, &chunked}) {
      bt.AddRow({ba.name, p == &alone ? "prefill-alone" : "chunked",
                 AsciiTable::Num(p->ThroughputTokS(), 0),
                 AsciiTable::Num(p->MedianItlMs(), 2),
                 AsciiTable::Num(p->P99ItlMs(), 2), AsciiTable::Num(p->MaxItlMs(), 2),
                 AsciiTable::Num(static_cast<double>(p->itl_stall_steps), 0)});
    }
    json.Add(std::string(ba.name) + "_alone_p99_itl_ms", alone.P99ItlMs());
    json.Add(std::string(ba.name) + "_chunked_p99_itl_ms", chunked.P99ItlMs());
    json.Add(std::string(ba.name) + "_p99_win",
             chunked.P99ItlMs() > 0 ? alone.P99ItlMs() / chunked.P99ItlMs() : 0.0);
  }
  bt.Print();
  bench::Note("\nexpected shape: prefill-alone's tail explodes at every burstiness");
  bench::Note("level (any long prompt stalls the whole decode batch for its");
  bench::Note("prefill); chunked mixed batching is stall-free across the axis.");

  // --- Chunk size x policy sweep on the bursty mix. ------------------------
  Rng rng(2027);
  const auto w = BurstyLongPrefillWorkload(rng, wcfg);
  const auto alone =
      RunWith(w, 0, BatchPolicy::kDecodePriority, SchedulerKind::kBalanced);
  std::printf("\nprefill-alone baseline: %.0f tok/s, P99 ITL %.1f ms, max ITL"
              " %.1f ms, %lld stalled branch-steps\n",
              alone.ThroughputTokS(), alone.P99ItlMs(), alone.MaxItlMs(),
              static_cast<long long>(alone.itl_stall_steps));
  json.Add("alone_tok_s", alone.ThroughputTokS());
  json.Add("alone_p99_itl_ms", alone.P99ItlMs());
  json.Add("alone_max_itl_ms", alone.MaxItlMs());
  json.Add("alone_p99_ttft_ms", alone.TtftPercentileMs(0.99));

  AsciiTable t({"chunk", "policy", "tok/s", "P50 ITL", "P99 ITL", "max ITL",
                "P99 TTFT", "mixed %", "ITL win"});
  double headline_p99_win = 0.0, headline_tok_frac = 0.0;
  bool headline_stall_free = false;
  for (const int64_t chunk : {int64_t{512}, int64_t{1024}, int64_t{2048},
                              int64_t{4096}}) {
    for (const BatchPolicy policy :
         {BatchPolicy::kDecodePriority, BatchPolicy::kThroughputPriority}) {
      const auto m = RunWith(w, chunk, policy, SchedulerKind::kBalanced);
      const double win = m.P99ItlMs() > 0 ? alone.P99ItlMs() / m.P99ItlMs() : 0.0;
      const char* pname =
          policy == BatchPolicy::kDecodePriority ? "decode-pri" : "throughput-pri";
      t.AddRow({AsciiTable::Num(static_cast<double>(chunk), 0), pname,
                AsciiTable::Num(m.ThroughputTokS(), 0),
                AsciiTable::Num(m.MedianItlMs(), 2), AsciiTable::Num(m.P99ItlMs(), 2),
                AsciiTable::Num(m.MaxItlMs(), 2),
                AsciiTable::Num(m.TtftPercentileMs(0.99), 0),
                bench::Pct(m.MixedStepFrac(), 0), AsciiTable::Num(win, 1)});
      const std::string key = "chunk" + std::to_string(chunk) + "_" +
                              (policy == BatchPolicy::kDecodePriority ? "dp" : "tp");
      json.Add(key + "_tok_s", m.ThroughputTokS());
      json.Add(key + "_p99_itl_ms", m.P99ItlMs());
      json.Add(key + "_p99_ttft_ms", m.TtftPercentileMs(0.99));
      json.Add(key + "_mixed_frac", m.MixedStepFrac());
      json.Add(key + "_p99_win", win);
      if (chunk == headline_chunk && policy == BatchPolicy::kDecodePriority) {
        headline_p99_win = win;
        headline_tok_frac = m.ThroughputTokS() / alone.ThroughputTokS();
        headline_stall_free = m.itl_stall_steps == 0;
      }
    }
  }
  t.Print();
  bench::Note("\nexpected shape: every chunked point is stall-free; smaller chunks");
  bench::Note("buy a lower ITL tail at the cost of more steps (P50 rises);");
  bench::Note("throughput-priority drains burst TTFT faster but fattens the ITL");
  bench::Note("tail — the knob trades the two paper metrics against each other.");

  // --- Scheduler ablation (Tables 6/7 extended to serving): the naive
  // scheduler prices the SAME mixed chunk+decode batches without KV
  // splitting, so one long-KV work unit dominates each launch. ------------
  std::printf("\n--- scheduler ablation @ chunk %lld (decode-priority) ---\n",
              static_cast<long long>(headline_chunk));
  const auto naive_alone =
      RunWith(w, 0, BatchPolicy::kDecodePriority, SchedulerKind::kNaive);
  const auto naive_chunked = RunWith(w, headline_chunk, BatchPolicy::kDecodePriority,
                                     SchedulerKind::kNaive);
  const auto bal_chunked = RunWith(w, headline_chunk, BatchPolicy::kDecodePriority,
                                   SchedulerKind::kBalanced);
  const double bal_win = bal_chunked.P99ItlMs() > 0
                             ? alone.P99ItlMs() / bal_chunked.P99ItlMs()
                             : 0.0;
  const double naive_win = naive_chunked.P99ItlMs() > 0
                               ? naive_alone.P99ItlMs() / naive_chunked.P99ItlMs()
                               : 0.0;
  AsciiTable at({"scheduler", "mode", "tok/s", "P99 ITL", "attn time (ms)",
                 "ITL win"});
  at.AddRow({"balanced", "prefill-alone", AsciiTable::Num(alone.ThroughputTokS(), 0),
             AsciiTable::Num(alone.P99ItlMs(), 2),
             AsciiTable::Num(alone.total_attention_ms, 0), "-"});
  at.AddRow({"balanced", "chunked", AsciiTable::Num(bal_chunked.ThroughputTokS(), 0),
             AsciiTable::Num(bal_chunked.P99ItlMs(), 2),
             AsciiTable::Num(bal_chunked.total_attention_ms, 0),
             AsciiTable::Num(bal_win, 1)});
  at.AddRow({"naive", "prefill-alone", AsciiTable::Num(naive_alone.ThroughputTokS(), 0),
             AsciiTable::Num(naive_alone.P99ItlMs(), 2),
             AsciiTable::Num(naive_alone.total_attention_ms, 0), "-"});
  at.AddRow({"naive", "chunked", AsciiTable::Num(naive_chunked.ThroughputTokS(), 0),
             AsciiTable::Num(naive_chunked.P99ItlMs(), 2),
             AsciiTable::Num(naive_chunked.total_attention_ms, 0),
             AsciiTable::Num(naive_win, 1)});
  at.Print();
  const double naive_attn_frac =
      bal_chunked.total_attention_ms > 0
          ? naive_chunked.total_attention_ms / bal_chunked.total_attention_ms
          : 0.0;
  bench::Note("\nexpected shape: naive pays more attention time on every mixed");
  bench::Note("batch (heterogeneous qo tiles, no KV splitting), so its chunking");
  bench::Note("win lands below the balanced scheduler's.");

  // --- Gates. --------------------------------------------------------------
  std::printf("\nchunked @ %lld (balanced): P99 ITL win %.1fx (acceptance: >= 2x),"
              " tokens/s %.1f%% of prefill-alone (acceptance: >= 95%%)\n",
              static_cast<long long>(headline_chunk), headline_p99_win,
              100.0 * headline_tok_frac);
  std::printf("naive ablation: win %.1fx vs balanced %.1fx (acceptance: smaller),"
              " naive chunked attention %.2fx balanced (acceptance: >= 1.1x)\n",
              naive_win, bal_win, naive_attn_frac);
  json.Add("gate_p99_win", headline_p99_win);
  json.Add("gate_tok_frac", headline_tok_frac);
  json.Add("gate_stall_free", headline_stall_free ? 1.0 : 0.0);
  json.Add("gate_bal_win", bal_win);
  json.Add("gate_naive_win", naive_win);
  json.Add("gate_naive_attn_frac", naive_attn_frac);
  const bool ok = headline_p99_win >= 2.0 && headline_tok_frac >= 0.95 &&
                  headline_stall_free && naive_win < bal_win &&
                  naive_attn_frac >= 1.1;
  json.Add("acceptance_passed", ok ? 1.0 : 0.0);
  json.Add("wall_ms", wall_timer.ElapsedMs());
  if (!json.WriteTo(json_path)) return 1;
  if (!ok) {
    std::printf("ACCEPTANCE FAILED\n");
    return 1;
  }
  if (const char* baseline = bench::ArgValue(argc, argv, "--check")) {
    if (!bench::CheckBaseline(baseline, json)) return 1;
  }
  return 0;
}
