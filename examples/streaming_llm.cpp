// StreamingLLM (Sec. 4.3): unbounded generation in constant memory with
// attention sinks + a rolling window, using the fused-RoPE attention variant
// so un-rotated keys can live in the cache.
//
// Pages are managed explicitly: sink pages are pinned forever, window pages
// rotate through a deque and are freed on eviction, so the page pool stays
// constant-size no matter how many tokens stream through. RoPE positions
// are assigned *within the cache* (sinks at 0..3, window following) — the
// kernel rotates Q/K on the fly from the BSR position metadata, so no
// re-rotation pass ever touches the cache.
#include <cstdio>
#include <deque>

#include "kvcache/ragged.h"
#include "runtime/batch_handle.h"
#include "util/rng.h"

using namespace flashinfer;

int main() {
  const int heads = 8, head_dim = 64, page_size = 16;
  const int sink_pages_n = 1;  // 16 sink tokens (>= the paper's 4).
  const int window_pages_n = 16;  // 256-token rolling window.
  const int64_t total_tokens = 4096;

  // Pool sized exactly for sinks + window + one in-flight page: constant
  // memory however long the stream runs.
  PagedKVCache cache(DType::kF16, heads, head_dim, page_size,
                     sink_pages_n + window_pages_n + 1);
  Rng rng(3);

  Workspace ws(Workspace::EstimateBytes(528, 16, head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.variant = VariantKind::kFusedRope;
  info.kv_dtype = DType::kF16;
  info.num_qo_heads = heads;
  info.num_kv_heads = heads;
  info.head_dim = head_dim;
  BatchAttentionHandle handle(gpusim::H100Sxm80GB(), info, &ws);
  auto& vp = handle.MutableVariantParams();
  vp.sm_scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  vp.causal = false;  // The rolling view only ever contains visible tokens.
  vp.rope_theta = 10000.0f;

  const auto qo_indptr = BuildIndptr({1});
  auto q = RaggedTensor::Zeros(qo_indptr, static_cast<int64_t>(heads) * head_dim);
  auto o = RaggedTensor::Zeros(qo_indptr, q.inner);

  std::vector<int64_t> sink_pages;
  std::deque<int64_t> window_pages;
  int fill = 0;          // Tokens in the newest window page.
  int64_t current = -1;  // Newest window page (or a sink page while filling).
  double total_sim_us = 0.0;
  int64_t peak_live = 0;

  std::vector<float> kv_row(static_cast<size_t>(heads) * head_dim);
  for (int64_t t = 0; t < total_tokens; ++t) {
    // --- Append this token's K/V into the rolling cache. -------------------
    if (fill == 0) {
      current = cache.AllocPage();
      if (static_cast<int>(sink_pages.size()) < sink_pages_n) {
        sink_pages.push_back(current);
      } else {
        window_pages.push_back(current);
        if (static_cast<int>(window_pages.size()) > window_pages_n) {
          cache.ReleasePage(window_pages.front());  // Constant memory.
          window_pages.pop_front();
        }
      }
    }
    for (auto& x : kv_row) x = static_cast<float>(rng.Normal(0, 1));
    cache.SetToken(current, fill, kv_row.data(), kv_row.data());
    fill = (fill + 1) % page_size;
    peak_live = std::max(peak_live, cache.num_live_pages());

    // --- Attend over sinks + window with cache-relative positions. ---------
    sparse::RequestKv view;
    view.pages = sink_pages;
    view.pages.insert(view.pages.end(), window_pages.begin(), window_pages.end());
    view.last_page_len = fill == 0 ? page_size : fill;
    const int64_t visible = static_cast<int64_t>(view.pages.size() - 1) * page_size +
                            view.last_page_len;
    for (auto& x : q.data) x = static_cast<float>(rng.Normal(0, 1));
    auto bsr = sparse::BuildBatchBsr(qo_indptr, {view}, page_size, handle.config().tile_q);
    handle.Plan(&bsr, qo_indptr, {visible});
    total_sim_us += handle.Run(q, cache, &o).time_us;
  }

  std::printf("streamed %lld tokens through a %d-page cache (peak %lld pages live)\n",
              static_cast<long long>(total_tokens), sink_pages_n + window_pages_n + 1,
              static_cast<long long>(peak_live));
  std::printf("simulated decode attention: %.2f us/token (fused RoPE, H100)\n",
              total_sim_us / static_cast<double>(total_tokens));
  std::printf("last output, head 0, dims 0..3: %+.4f %+.4f %+.4f %+.4f\n", o.Row(0)[0],
              o.Row(0)[1], o.Row(0)[2], o.Row(0)[3]);
  return 0;
}
