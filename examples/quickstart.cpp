// Quickstart: batch decode attention over a paged KV cache.
//
// Walks the full FlashInfer workflow of Listing 1:
//   1. build a paged KV cache and append two requests' histories,
//   2. export the batch as a BSR view,
//   3. create a BatchAttentionHandle (the AttentionWrapper analog),
//   4. plan() from sequence-length information, run() the kernels,
//   5. read back outputs and the simulated device report.
#include <cstdio>

#include "kvcache/paged.h"
#include "kvcache/ragged.h"
#include "runtime/batch_handle.h"
#include "util/rng.h"

using namespace flashinfer;

int main() {
  const int num_qo_heads = 8, num_kv_heads = 2, head_dim = 64, page_size = 16;
  const std::vector<int64_t> kv_lens = {777, 42};

  // 1. Paged KV cache with two sequences of decoded history.
  PagedKVCache cache(DType::kF16, num_kv_heads, head_dim, page_size, /*max_pages=*/256);
  Rng rng(7);
  std::vector<int> seqs;
  for (int64_t len : kv_lens) {
    const int seq = cache.CreateSequence();
    seqs.push_back(seq);
    std::vector<float> k(static_cast<size_t>(len) * num_kv_heads * head_dim);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
    cache.AppendTokens(seq, k.data(), v.data(), len);
  }
  std::printf("cache: %lld live pages (%d tokens/page)\n",
              static_cast<long long>(cache.num_live_pages()), page_size);

  // 2. One decode query row per request, ragged layout, no padding.
  const std::vector<int64_t> qo_lens = {1, 1};
  auto qo_indptr = BuildIndptr(qo_lens);
  auto q = RaggedTensor::Zeros(qo_indptr, static_cast<int64_t>(num_qo_heads) * head_dim);
  for (auto& x : q.data) x = static_cast<float>(rng.Normal(0, 1));
  auto o = RaggedTensor::Zeros(qo_indptr, q.inner);

  // 3. The wrapper: device + task info + user workspace buffer.
  Workspace workspace(Workspace::EstimateBytes(/*num_ctas=*/528, /*tile_rows=*/16, head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.variant = VariantKind::kVanilla;
  info.kv_dtype = DType::kF16;
  info.num_qo_heads = num_qo_heads;
  info.num_kv_heads = num_kv_heads;
  info.head_dim = head_dim;
  info.avg_qlen_hint = 1.0;  // Decode.
  BatchAttentionHandle handle(gpusim::H100Sxm80GB(), info, &workspace);
  handle.MutableVariantParams().sm_scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  handle.MutableVariantParams().causal = true;
  std::printf("kernel config: tile_q=%d tile_kv=%d template=FA%d sparse=%d\n",
              handle.config().tile_q, handle.config().tile_kv,
              handle.config().tmpl == gpusim::TemplateGen::kFA3 ? 3 : 2,
              handle.config().sparse ? 1 : 0);

  // 4. BSR view of the batch (GQA head-group fusion: rows x group size).
  const int group = num_qo_heads / num_kv_heads;
  std::vector<sparse::RequestKv> req_kv;
  std::vector<int64_t> fused_lens;
  for (size_t r = 0; r < seqs.size(); ++r) {
    req_kv.push_back(cache.ExportKv(seqs[static_cast<size_t>(r)]));
    fused_lens.push_back(qo_lens[r] * group);
  }
  auto bsr = sparse::BuildBatchBsr(BuildIndptr(fused_lens), req_kv, page_size,
                                   handle.config().tile_q);

  // 5. Inspector-executor: plan once per generation step, run per layer.
  handle.Plan(&bsr, qo_indptr, kv_lens);
  std::printf("plan: %d CTAs, %lld work items, kv chunk cap %lld, %lld partial rows\n",
              handle.plan().NumCtas(), static_cast<long long>(handle.plan().NumWorkItems()),
              static_cast<long long>(handle.plan().lkv_chunk),
              static_cast<long long>(handle.plan().num_partial_rows));

  const auto report = handle.Run(q, cache, &o);
  std::printf("simulated H100 launch: %.2f us, %.1f%% bandwidth utilization\n",
              report.time_us, 100.0 * report.BandwidthUtil(handle.device()));
  std::printf("output row 0, head 0, dims 0..3: %+.4f %+.4f %+.4f %+.4f\n", o.Row(0)[0],
              o.Row(0)[1], o.Row(0)[2], o.Row(0)[3]);

  // Re-planning with the same lengths hits the plan cache (all layers of a
  // generation step share one plan).
  handle.Plan(&bsr, qo_indptr, kv_lens);
  std::printf("plan cache hits: %lld\n", static_cast<long long>(handle.plan_cache_hits()));
  return 0;
}
