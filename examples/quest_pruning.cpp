// Query-aware KV pruning (Quest, Appendix G.5) on FlashInfer's fine-grained
// block-sparse kernels.
//
// Long-context decode touches only a "page budget" of criticial KV pages:
// per-page min/max key metadata upper-bounds each page's attention score,
// the top pages are selected per query, and BuildPrunedBsr lowers the
// selection to a (1, 16) block-sparse view — with original token positions
// preserved, so causal masking and positional variants stay correct.
#include <cstdio>

#include "core/reference.h"
#include "kvcache/ragged.h"
#include "runtime/batch_handle.h"
#include "sparse/quest.h"
#include "util/rng.h"

using namespace flashinfer;

int main() {
  const int heads = 8, head_dim = 64, page_size = 16;
  const int64_t seq_len = 32768;
  const int page_budget = 64;  // Keep 1024 of 32768 tokens.

  PagedKVCache cache(DType::kF16, heads, head_dim, page_size,
                     seq_len / page_size + 2);
  Rng rng(21);

  // Decode query first, so a sparse set of "critical" tokens can be planted
  // with keys aligned to it (real caches have such structure; Quest exploits
  // it).
  const auto qo_indptr = BuildIndptr({1});
  auto q = RaggedTensor::Zeros(qo_indptr, static_cast<int64_t>(heads) * head_dim);
  for (auto& x : q.data) x = static_cast<float>(rng.Normal(0, 1));

  const int seq = cache.CreateSequence();
  {
    std::vector<float> k(static_cast<size_t>(seq_len) * heads * head_dim);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0, 0.3));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
    for (int64_t t = 0; t < seq_len; ++t) {
      if (rng.NextDouble() > 0.02) continue;  // ~2% critical tokens.
      for (int h = 0; h < heads; ++h) {
        for (int d = 0; d < head_dim; ++d) {
          k[static_cast<size_t>((t * heads + h) * head_dim + d)] +=
              0.6f * q.Row(0)[static_cast<size_t>(h * head_dim + d)];
        }
      }
    }
    cache.AppendTokens(seq, k.data(), v.data(), seq_len);
  }

  // --- Quest selection from page metadata. ---------------------------------
  const auto meta = sparse::BuildPageMetadata(cache, seq);
  const auto selected = sparse::SelectTopPages(
      meta, {q.Row(0).data(), q.Row(0).size()}, heads, page_budget);
  std::printf("selected %zu/%lld pages; first five:", selected.size(),
              static_cast<long long>(meta.num_pages));
  for (size_t i = 0; i < 5 && i < selected.size(); ++i) std::printf(" %d", selected[i]);
  std::printf("\n");

  // --- Pruned attention through the standard handle. -----------------------
  Workspace ws(Workspace::EstimateBytes(528, 16, head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.kv_dtype = DType::kF16;
  info.num_qo_heads = heads;
  info.num_kv_heads = heads;
  info.head_dim = head_dim;
  BatchAttentionHandle handle(gpusim::H100Sxm80GB(), info, &ws);
  handle.MutableVariantParams().sm_scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  const auto req_kv = cache.ExportKv(seq);
  const auto pruned = sparse::BuildPrunedBsr(qo_indptr, {req_kv}, {selected}, page_size,
                                             handle.config().tile_q);
  auto o_pruned = RaggedTensor::Zeros(qo_indptr, q.inner);
  handle.Plan(&pruned, qo_indptr, {seq_len});
  const auto pruned_report = handle.Run(q, cache, &o_pruned);

  const auto full = sparse::BuildBatchBsr(qo_indptr, {req_kv}, page_size,
                                          handle.config().tile_q);
  auto o_full = RaggedTensor::Zeros(qo_indptr, q.inner);
  handle.Plan(&full, qo_indptr, {seq_len});
  const auto full_report = handle.Run(q, cache, &o_full);

  std::printf("simulated decode latency: full %.2f us, pruned %.2f us (%.1fx)\n",
              full_report.time_us, pruned_report.time_us,
              full_report.time_us / pruned_report.time_us);

  // Quality check: cosine similarity between pruned and exact outputs.
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < o_full.data.size(); ++i) {
    dot += static_cast<double>(o_full.data[i]) * o_pruned.data[i];
    na += static_cast<double>(o_full.data[i]) * o_full.data[i];
    nb += static_cast<double>(o_pruned.data[i]) * o_pruned.data[i];
  }
  std::printf("pruned-vs-exact cosine similarity: %.4f (budget %d/%lld pages)\n",
              dot / std::sqrt(na * nb), page_budget,
              static_cast<long long>(meta.num_pages));
  return 0;
}
