// End-to-end serving simulation: Llama-3.1-8B on a simulated H100 under a
// ShareGPT-like workload, comparing the FlashInfer backend against the
// Triton backend (the Fig. 7 setting at example scale), plus the chunked
// prefill / mixed-batching knob: prefill_chunk_tokens = 0 restores the
// legacy prefill-alone loop, whose decode stalls show up in the ITL tail
// and the stall counters.
#include <cstdio>

#include "serving/engine.h"
#include "util/table.h"

using namespace flashinfer;
using namespace flashinfer::serving;

int main() {
  Rng rng(1234);
  const auto workload = ShareGptWorkload(rng, /*num_requests=*/120, /*request_rate=*/20.0);

  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();

  AsciiTable table({"backend", "median ITL (ms)", "median TTFT (ms)", "throughput (tok/s)",
                    "attention share"});
  for (const auto& backend : {FlashInferBackend(), TritonBackend()}) {
    cfg.backend = backend;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    const double total_ms = m.total_attention_ms + m.total_gemm_ms + m.total_host_ms;
    table.AddRow({backend.name, AsciiTable::Num(m.MedianItlMs()),
                  AsciiTable::Num(m.MedianTtftMs()), AsciiTable::Num(m.ThroughputTokS(), 0),
                  AsciiTable::Num(100.0 * m.total_attention_ms / total_ms, 1) + "%"});
  }
  std::printf("Llama 3.1 8B, simulated 1xH100, 120 ShareGPT-like requests @ 20 req/s\n");
  table.Print();

  // Chunked prefill vs the legacy prefill-alone loop: same workload, same
  // backend, only the batch former changes.
  std::printf("\nchunked prefill (StepPlan mixed batches) vs prefill-alone:\n");
  AsciiTable chunked({"mode", "P99 ITL (ms)", "max ITL (ms)", "mixed steps %",
                      "stalled branch-steps", "mean stalls/branch"});
  cfg.backend = FlashInferBackend();
  for (const int64_t chunk : {int64_t{0}, int64_t{2048}}) {
    cfg.prefill_chunk_tokens = chunk;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    chunked.AddRow({chunk == 0 ? "prefill-alone (chunk=0)" : "chunked (2048)",
                    AsciiTable::Num(m.P99ItlMs(), 2), AsciiTable::Num(m.MaxItlMs(), 2),
                    AsciiTable::Num(100.0 * m.MixedStepFrac(), 1),
                    AsciiTable::Num(static_cast<double>(m.itl_stall_steps), 0),
                    AsciiTable::Num(m.MeanBranchStalls(), 2)});
  }
  chunked.Print();
  return 0;
}
