// End-to-end serving simulation: Llama-3.1-8B on a simulated H100 under a
// ShareGPT-like workload, comparing the FlashInfer backend against the
// Triton backend (the Fig. 7 setting at example scale), plus the chunked
// prefill / mixed-batching knob: prefill_chunk_tokens = 0 restores the
// legacy prefill-alone loop, whose decode stalls show up in the ITL tail
// and the stall counters.
// The final section turns on engine tracing AND the live telemetry plane,
// re-runs the workload under KV pressure with three tenants and per-class
// SLOs, prints the per-request wall-clock decomposition recovered from the
// trace (queue wait / prefill / decode / preempted / restore), proves every
// stall counter increment is attributable to a trace event, prints the
// per-tenant SLO attainment / burn-rate table, and writes a Chrome/Perfetto
// trace file (open in ui.perfetto.dev — burn alerts land as instants on the
// same timeline) plus a telemetry registry JSON snapshot.
#include <cstdio>

#include "obs/export.h"
#include "obs/query.h"
#include "obs/slo.h"
#include "serving/engine.h"
#include "util/table.h"

using namespace flashinfer;
using namespace flashinfer::serving;

int main() {
  Rng rng(1234);
  const auto workload = ShareGptWorkload(rng, /*num_requests=*/120, /*request_rate=*/20.0);

  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();

  AsciiTable table({"backend", "median ITL (ms)", "median TTFT (ms)", "throughput (tok/s)",
                    "attention share"});
  for (const auto& backend : {FlashInferBackend(), TritonBackend()}) {
    cfg.backend = backend;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    const double total_ms = m.total_attention_ms + m.total_gemm_ms + m.total_host_ms;
    table.AddRow({backend.name, AsciiTable::Num(m.MedianItlMs()),
                  AsciiTable::Num(m.MedianTtftMs()), AsciiTable::Num(m.ThroughputTokS(), 0),
                  AsciiTable::Num(100.0 * m.total_attention_ms / total_ms, 1) + "%"});
  }
  std::printf("Llama 3.1 8B, simulated 1xH100, 120 ShareGPT-like requests @ 20 req/s\n");
  table.Print();

  // Chunked prefill vs the legacy prefill-alone loop: same workload, same
  // backend, only the batch former changes.
  std::printf("\nchunked prefill (StepPlan mixed batches) vs prefill-alone:\n");
  AsciiTable chunked({"mode", "P99 ITL (ms)", "max ITL (ms)", "mixed steps %",
                      "stalled branch-steps", "mean stalls/branch"});
  cfg.backend = FlashInferBackend();
  for (const int64_t chunk : {int64_t{0}, int64_t{2048}}) {
    cfg.prefill_chunk_tokens = chunk;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    chunked.AddRow({chunk == 0 ? "prefill-alone (chunk=0)" : "chunked (2048)",
                    AsciiTable::Num(m.P99ItlMs(), 2), AsciiTable::Num(m.MaxItlMs(), 2),
                    AsciiTable::Num(100.0 * m.MixedStepFrac(), 1),
                    AsciiTable::Num(static_cast<double>(m.itl_stall_steps), 0),
                    AsciiTable::Num(m.MeanBranchStalls(), 2)});
  }
  chunked.Print();

  // Traced run under KV pressure: every fifth request is high-priority and
  // the KV budget is tight enough that serving them evicts low-priority
  // branches — the trace explains where every request's wall clock went and
  // why every stall happened.
  std::printf("\ntraced run (4k-token KV budget, 20%% high-priority, preemption on):\n");
  auto pressured = workload;
  for (size_t i = 0; i < pressured.size(); ++i) {
    pressured[i].priority = i % 5 == 0 ? 1 : 0;
    pressured[i].tenant = static_cast<int>(i % 3);  // Three tenant classes.
  }
  cfg.prefill_chunk_tokens = 2048;
  cfg.preemption.enabled = true;
  cfg.trace.enabled = true;
  // Live telemetry plane: windowed per-(tenant, priority) series plus
  // declarative SLOs — one TTFT objective per tenant and a global ITL
  // objective. Under this budget the preemption churn burns the TTFT error
  // budgets fast enough to fire multi-window burn alerts into the trace.
  cfg.telemetry.enabled = true;
  for (int tenant = 0; tenant < 3; ++tenant) {
    obs::SloSpec slo;
    slo.name = "tenant" + std::to_string(tenant) + "_ttft";
    slo.signal = obs::SloSignal::kTtft;
    slo.threshold_ms = 250.0;
    slo.objective = 0.99;
    slo.tenant = tenant;
    slo.fast_window_s = 2.0;
    slo.slow_window_s = 10.0;
    slo.fast_burn = 5.0;
    slo.slow_burn = 2.0;
    cfg.telemetry.slos.push_back(slo);
  }
  {
    obs::SloSpec slo;
    slo.name = "fleet_itl";
    slo.signal = obs::SloSignal::kItl;
    slo.threshold_ms = 50.0;
    slo.objective = 0.95;
    slo.fast_window_s = 2.0;
    slo.slow_window_s = 10.0;
    slo.fast_burn = 5.0;
    slo.slow_burn = 2.0;
    cfg.telemetry.slos.push_back(slo);
  }
  const double kv_bytes =
      4000.0 * cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  cfg.hbm_capacity_gb = (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
  ServingEngine traced(cfg);
  const auto m = traced.Run(pressured);
  const obs::TraceQuery query(traced.TraceEvents());
  std::printf("%s", query.BreakdownTable(/*max_rows=*/12).c_str());
  std::printf(
      "\nstall attribution: %lld ITL stall steps, %lld unexplained; "
      "%lld preempt stall steps, %lld unexplained\n",
      static_cast<long long>(query.TotalItlStallSteps()),
      static_cast<long long>(query.UnexplainedItlStalls().size()),
      static_cast<long long>(query.TotalPreemptStallSteps()),
      static_cast<long long>(query.UnexplainedPreemptStalls().size()));
  std::printf("(metrics agree: itl_stall_steps=%lld preempt_stall_steps=%lld)\n",
              static_cast<long long>(m.itl_stall_steps),
              static_cast<long long>(m.preempt_stall_steps));
  // Per-tenant SLO attainment and burn rates over the whole run; alerts are
  // the edge-triggered instants also visible on the Perfetto timeline.
  std::printf("\nSLO attainment (objective: TTFT<=250ms @99%% per tenant, "
              "ITL<=50ms @95%% fleet-wide):\n");
  AsciiTable slo_table({"slo", "signal", "good", "bad", "attainment %",
                        "fast burn", "slow burn", "alerts"});
  for (const auto& s : traced.Slo()->Status(m.makespan_s)) {
    slo_table.AddRow({s.spec->name, obs::SloSignalStr(s.spec->signal),
                      AsciiTable::Num(static_cast<double>(s.good), 0),
                      AsciiTable::Num(static_cast<double>(s.bad), 0),
                      AsciiTable::Num(100.0 * s.attainment, 1),
                      AsciiTable::Num(s.fast_burn, 2), AsciiTable::Num(s.slow_burn, 2),
                      AsciiTable::Num(static_cast<double>(s.alerts), 0)});
  }
  slo_table.Print();
  int64_t alert_instants = 0;
  for (const auto& e : traced.TraceEvents()) {
    if (e.name == obs::TraceName::kSloAlert) ++alert_instants;
  }
  std::printf("burn-rate alerts on the trace timeline: %lld\n",
              static_cast<long long>(alert_instants));

  const char* trace_path = "serving_sim.trace.json";
  if (obs::WritePerfettoFile(trace_path,
                             {{"engine", traced.TraceEvents()}})) {
    std::printf("wrote %s — open in ui.perfetto.dev\n", trace_path);
  }
  const char* metrics_path = "serving_sim.metrics.json";
  if (std::FILE* f = std::fopen(metrics_path, "w")) {
    const std::string snap = traced.Telemetry()->JsonSnapshot(m.makespan_s);
    std::fwrite(snap.data(), 1, snap.size(), f);
    std::fclose(f);
    std::printf("wrote %s — windowed per-tenant registry snapshot\n", metrics_path);
  }
  return 0;
}
