// End-to-end serving simulation: Llama-3.1-8B on a simulated H100 under a
// ShareGPT-like workload, comparing the FlashInfer backend against the
// Triton backend (the Fig. 7 setting at example scale), plus the chunked
// prefill / mixed-batching knob: prefill_chunk_tokens = 0 restores the
// legacy prefill-alone loop, whose decode stalls show up in the ITL tail
// and the stall counters.
// The final section turns on engine tracing, re-runs the workload under KV
// pressure, prints the per-request wall-clock decomposition recovered from
// the trace (queue wait / prefill / decode / preempted / restore), proves
// every stall counter increment is attributable to a trace event, and writes
// a Chrome/Perfetto trace file (open in ui.perfetto.dev).
#include <cstdio>

#include "obs/export.h"
#include "obs/query.h"
#include "serving/engine.h"
#include "util/table.h"

using namespace flashinfer;
using namespace flashinfer::serving;

int main() {
  Rng rng(1234);
  const auto workload = ShareGptWorkload(rng, /*num_requests=*/120, /*request_rate=*/20.0);

  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();

  AsciiTable table({"backend", "median ITL (ms)", "median TTFT (ms)", "throughput (tok/s)",
                    "attention share"});
  for (const auto& backend : {FlashInferBackend(), TritonBackend()}) {
    cfg.backend = backend;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    const double total_ms = m.total_attention_ms + m.total_gemm_ms + m.total_host_ms;
    table.AddRow({backend.name, AsciiTable::Num(m.MedianItlMs()),
                  AsciiTable::Num(m.MedianTtftMs()), AsciiTable::Num(m.ThroughputTokS(), 0),
                  AsciiTable::Num(100.0 * m.total_attention_ms / total_ms, 1) + "%"});
  }
  std::printf("Llama 3.1 8B, simulated 1xH100, 120 ShareGPT-like requests @ 20 req/s\n");
  table.Print();

  // Chunked prefill vs the legacy prefill-alone loop: same workload, same
  // backend, only the batch former changes.
  std::printf("\nchunked prefill (StepPlan mixed batches) vs prefill-alone:\n");
  AsciiTable chunked({"mode", "P99 ITL (ms)", "max ITL (ms)", "mixed steps %",
                      "stalled branch-steps", "mean stalls/branch"});
  cfg.backend = FlashInferBackend();
  for (const int64_t chunk : {int64_t{0}, int64_t{2048}}) {
    cfg.prefill_chunk_tokens = chunk;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    chunked.AddRow({chunk == 0 ? "prefill-alone (chunk=0)" : "chunked (2048)",
                    AsciiTable::Num(m.P99ItlMs(), 2), AsciiTable::Num(m.MaxItlMs(), 2),
                    AsciiTable::Num(100.0 * m.MixedStepFrac(), 1),
                    AsciiTable::Num(static_cast<double>(m.itl_stall_steps), 0),
                    AsciiTable::Num(m.MeanBranchStalls(), 2)});
  }
  chunked.Print();

  // Traced run under KV pressure: every fifth request is high-priority and
  // the KV budget is tight enough that serving them evicts low-priority
  // branches — the trace explains where every request's wall clock went and
  // why every stall happened.
  std::printf("\ntraced run (4k-token KV budget, 20%% high-priority, preemption on):\n");
  auto pressured = workload;
  for (size_t i = 0; i < pressured.size(); ++i) {
    pressured[i].priority = i % 5 == 0 ? 1 : 0;
  }
  cfg.prefill_chunk_tokens = 2048;
  cfg.preemption.enabled = true;
  cfg.trace.enabled = true;
  const double kv_bytes =
      4000.0 * cfg.model.KvBytesPerToken(cfg.backend.kv_dtype) / 0.9;
  cfg.hbm_capacity_gb = (cfg.model.WeightBytesPerGpu() + kv_bytes) / 1e9;
  ServingEngine traced(cfg);
  const auto m = traced.Run(pressured);
  const obs::TraceQuery query(traced.TraceEvents());
  std::printf("%s", query.BreakdownTable(/*max_rows=*/12).c_str());
  std::printf(
      "\nstall attribution: %lld ITL stall steps, %lld unexplained; "
      "%lld preempt stall steps, %lld unexplained\n",
      static_cast<long long>(query.TotalItlStallSteps()),
      static_cast<long long>(query.UnexplainedItlStalls().size()),
      static_cast<long long>(query.TotalPreemptStallSteps()),
      static_cast<long long>(query.UnexplainedPreemptStalls().size()));
  std::printf("(metrics agree: itl_stall_steps=%lld preempt_stall_steps=%lld)\n",
              static_cast<long long>(m.itl_stall_steps),
              static_cast<long long>(m.preempt_stall_steps));
  const char* trace_path = "serving_sim.trace.json";
  if (obs::WritePerfettoFile(trace_path,
                             {{"engine", traced.TraceEvents()}})) {
    std::printf("wrote %s — open in ui.perfetto.dev\n", trace_path);
  }
  return 0;
}
