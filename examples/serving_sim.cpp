// End-to-end serving simulation: Llama-3.1-8B on a simulated H100 under a
// ShareGPT-like workload, comparing the FlashInfer backend against the
// Triton backend (the Fig. 7 setting at example scale).
#include <cstdio>

#include "serving/engine.h"
#include "util/table.h"

using namespace flashinfer;
using namespace flashinfer::serving;

int main() {
  Rng rng(1234);
  const auto workload = ShareGptWorkload(rng, /*num_requests=*/120, /*request_rate=*/20.0);

  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();

  AsciiTable table({"backend", "median ITL (ms)", "median TTFT (ms)", "throughput (tok/s)",
                    "attention share"});
  for (const auto& backend : {FlashInferBackend(), TritonBackend()}) {
    cfg.backend = backend;
    ServingEngine engine(cfg);
    const auto m = engine.Run(workload);
    const double total_ms = m.total_attention_ms + m.total_gemm_ms + m.total_host_ms;
    table.AddRow({backend.name, AsciiTable::Num(m.MedianItlMs()),
                  AsciiTable::Num(m.MedianTtftMs()), AsciiTable::Num(m.ThroughputTokS(), 0),
                  AsciiTable::Num(100.0 * m.total_attention_ms / total_ms, 1) + "%"});
  }
  std::printf("Llama 3.1 8B, simulated 1xH100, 120 ShareGPT-like requests @ 20 req/s\n");
  table.Print();
  return 0;
}
