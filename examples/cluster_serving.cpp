// Cluster serving example: four Llama-3.1-8B replicas behind a router,
// serving a multi-tenant workload where each tenant front-loads a fixed
// system prompt. Compares routing policies: prefix-affinity routing keeps a
// tenant's requests on the replica that already caches its prompt KV.
#include <cstdio>

#include "cluster/cluster.h"
#include "util/table.h"

using namespace flashinfer;
using namespace flashinfer::cluster;
using namespace flashinfer::serving;

int main() {
  Rng rng(42);
  TenantPoolConfig pool;
  pool.num_tenants = 16;
  const auto workload = MultiTenantWorkload(rng, /*num_requests=*/240,
                                            /*request_rate=*/80.0, pool);

  ClusterConfig cfg;
  cfg.engine.model = Llama31_8B();
  cfg.engine.device = gpusim::H100Sxm80GB();
  cfg.engine.backend = FlashInferBackend();
  cfg.num_replicas = 4;

  std::printf("4x Llama 3.1 8B replicas, 240 requests @ 80 req/s, 16 tenants\n");
  AsciiTable table({"policy", "throughput (tok/s)", "median TTFT (ms)", "P99 TTFT (ms)",
                    "prefix hit %", "imbalance"});
  for (const auto policy : {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoaded,
                            RouterPolicy::kPrefixAffinity}) {
    cfg.policy = policy;
    const auto m = ClusterEngine(cfg).Run(workload);
    table.AddRow({RouterPolicyName(policy), AsciiTable::Num(m.ThroughputTokS(), 0),
                  AsciiTable::Num(Median(m.aggregate.ttft_ms), 1),
                  AsciiTable::Num(m.aggregate.TtftPercentileMs(0.99), 1),
                  AsciiTable::Num(100.0 * m.prefix_hit_rate, 1),
                  AsciiTable::Num(m.load_imbalance, 2)});
  }
  table.Print();
  return 0;
}
