// Speculative decoding walkthrough: how a draft-token tree becomes a sparse
// attention mask, how that mask runs through the same BSR kernels as dense
// attention, and how tree shape interacts with acceptance rate end to end.
//
// Three stages:
//   1. Build a draft tree and print its ancestor mask next to the BSR it
//      lowers to (Sec. 3.1.1: tree attention is just another sparse format).
//   2. Sample the acceptance model: expected accepted-prefix length vs.
//      tree shape — why branching helps exactly when per-token acceptance
//      is mediocre.
//   3. Run the serving engine with spec decode on a small backlogged batch
//      and compare tokens/s against vanilla decode at two acceptance rates.
#include <cstdio>

#include "serving/engine.h"
#include "spec/tree.h"
#include "util/table.h"

using namespace flashinfer;
using namespace flashinfer::serving;

namespace {

void PrintMaskAndBsr(const spec::DraftTree& tree) {
  const auto mask = tree.AncestorMask();
  std::printf("ancestor mask (row = tree token, col = tree token it attends):\n");
  for (size_t i = 0; i < mask.size(); ++i) {
    std::printf("  token %zu (level %d): ", i, tree.Level(static_cast<int>(i)));
    for (bool b : mask[i]) std::printf("%c", b ? 'X' : '.');
    std::printf("\n");
  }
  const auto bsr = spec::TreeMaskBsr(tree, /*tile_q=*/1, /*group=*/1);
  std::printf("lowered BSR (bc=1 vector-sparse): %lld block rows, %lld nnz of %d x %d"
              " dense\n",
              static_cast<long long>(bsr.NumBlockRows()),
              static_cast<long long>(bsr.Nnz()), tree.Size(), tree.Size());
}

}  // namespace

int main() {
  // --- 1. Tree -> mask -> BSR ----------------------------------------------
  std::printf("=== depth-2, branching-2 draft tree ===\n");
  spec::DraftTree tree(spec::TreeConfig{2, 2});
  PrintMaskAndBsr(tree);
  std::printf("\nEvery verify step batches these rows for all branches and runs the\n"
              "standard sparse kernels — no special tree-attention kernel exists.\n");

  // --- 2. Acceptance model: tree shape vs. acceptance rate ------------------
  std::printf("\n=== expected accepted draft tokens per verify step ===\n");
  AsciiTable at({"shape", "tokens", "p=0.3", "p=0.5", "p=0.7", "p=0.9"});
  const spec::TreeConfig shapes[] = {{4, 1}, {4, 2}, {4, 3}, {2, 4}};
  for (const auto& s : shapes) {
    spec::DraftTree t(s);
    char name[32];
    std::snprintf(name, sizeof(name), "depth %d x branch %d", s.depth, s.branching);
    at.AddRow({name, AsciiTable::Num(t.Size(), 0),
               AsciiTable::Num(spec::ExpectedAcceptedLen(t, 0.3), 2),
               AsciiTable::Num(spec::ExpectedAcceptedLen(t, 0.5), 2),
               AsciiTable::Num(spec::ExpectedAcceptedLen(t, 0.7), 2),
               AsciiTable::Num(spec::ExpectedAcceptedLen(t, 0.9), 2)});
  }
  at.Print();
  std::printf("branching rescues levels a single chain would lose (1-(1-p)^b per\n"
              "level) — but every tree token is verified, so wide trees only pay\n"
              "off while the verify step stays memory-bound.\n");

  // --- 3. End-to-end: spec decode vs vanilla -------------------------------
  std::printf("\n=== serving engine: 32-request backlog, Llama 3.1 8B + 68M draft ===\n");
  Rng rng(11);
  const auto workload = UniformWorkload(rng, 32, 1e4, 64, 512, /*output_len=*/192);

  EngineConfig cfg;
  cfg.model = Llama31_8B();
  cfg.device = gpusim::H100Sxm80GB();
  cfg.backend = FlashInferBackend();
  const auto vanilla = ServingEngine(cfg).Run(workload);

  AsciiTable et({"decoder", "tok/s", "vs vanilla", "tok/verify", "draft ovh %"});
  et.AddRow({"vanilla", AsciiTable::Num(vanilla.ThroughputTokS(), 0), "1.00", "-", "-"});
  for (const double accept : {0.4, 0.8}) {
    cfg.spec.enabled = true;
    cfg.spec.tree = spec::TreeConfig{4, 1};
    cfg.spec.default_accept_prob = accept;
    const auto m = ServingEngine(cfg).Run(workload);
    char name[32];
    std::snprintf(name, sizeof(name), "spec chain-4 p=%.1f", accept);
    et.AddRow({name, AsciiTable::Num(m.ThroughputTokS(), 0),
               AsciiTable::Num(m.ThroughputTokS() / vanilla.ThroughputTokS(), 2),
               AsciiTable::Num(m.TokensPerSpecStep(), 2),
               AsciiTable::Num(100.0 * m.DraftOverheadFrac(), 1)});
  }
  et.Print();
  std::printf("see bench_spec_decode for the full acceptance x shape sweep and the\n"
              "saturated-batch regime where low acceptance turns into a loss.\n");
  return 0;
}
