// Custom attention variants through the JIT pipeline (Sec. 3.2.3, Fig. 5).
//
// Defines FlashSigmoid — the paper's running example — as a spec of C++
// functor bodies plus two extra scalars, generates the kernel source,
// compiles it with the host compiler, loads it with dlopen, and runs it
// through the standard BatchAttentionHandle. Also shows a custom banded
// mask variant that no built-in provides.
#include <cstdio>

#include "jit/codegen.h"
#include "jit/compiler.h"
#include "kvcache/ragged.h"
#include "runtime/batch_handle.h"
#include "util/rng.h"

using namespace flashinfer;

namespace {

void RunVariant(const char* title, const std::shared_ptr<jit::CompiledKernel>& kernel,
                const float* extras, int num_extras) {
  const int heads = 4, head_dim = 32, page_size = 8;
  PagedKVCache cache(DType::kF16, heads, head_dim, page_size, 64);
  Rng rng(11);
  const int seq = cache.CreateSequence();
  const int64_t kv_len = 100;
  std::vector<float> k(static_cast<size_t>(kv_len) * heads * head_dim);
  std::vector<float> v(k.size());
  for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
  for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
  cache.AppendTokens(seq, k.data(), v.data(), kv_len);

  auto qo_indptr = BuildIndptr({1});
  auto q = RaggedTensor::Zeros(qo_indptr, static_cast<int64_t>(heads) * head_dim);
  for (auto& x : q.data) x = static_cast<float>(rng.Normal(0, 1));
  auto o = RaggedTensor::Zeros(qo_indptr, q.inner);

  Workspace ws(Workspace::EstimateBytes(528, 16, head_dim));
  BatchAttentionHandle::TaskInfo info;
  info.kv_dtype = DType::kF16;
  info.num_qo_heads = heads;
  info.num_kv_heads = heads;
  info.head_dim = head_dim;
  BatchAttentionHandle handle(gpusim::H100Sxm80GB(), info, &ws);
  // Swap in the JIT-compiled kernel (overrides the built-in dispatch).
  handle.SetKernel(kernel->fn(), kernel->use_softmax());
  auto& vp = handle.MutableVariantParams();
  vp.sm_scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  vp.causal = true;
  vp.extra = extras;
  vp.num_extra = num_extras;

  auto bsr = sparse::BuildBatchBsr(qo_indptr, {cache.ExportKv(seq)}, page_size,
                                   handle.config().tile_q);
  handle.Plan(&bsr, qo_indptr, {kv_len});
  handle.Run(q, cache, &o);
  std::printf("%-24s o[0..3] = %+.4f %+.4f %+.4f %+.4f\n", title, o.Row(0)[0], o.Row(0)[1],
              o.Row(0)[2], o.Row(0)[3]);
}

}  // namespace

int main() {
  if (!jit::CompilerAvailable()) {
    std::printf("host compiler unavailable; JIT demo skipped\n");
    return 0;
  }

  // --- FlashSigmoid: ~the 20 lines the paper advertises. -------------------
  jit::AttentionSpecDesc sigmoid;
  sigmoid.name = "FlashSigmoid";
  sigmoid.kv_dtype = DType::kF16;
  sigmoid.use_softmax = false;
  sigmoid.extra_params = {{"scale", 1.0f}, {"bias", 0.0f}};
  sigmoid.logits_transform_body =
      "return 1.f / (1.f + std::exp(-(logit * p.sm_scale * scale + bias)));";

  std::printf("--- generated source (first 25 lines) ---\n");
  const auto source = jit::GenerateSource(sigmoid);
  int lines = 0;
  for (size_t i = 0; i < source.size() && lines < 25; ++i) {
    std::putchar(source[i]);
    if (source[i] == '\n') ++lines;
  }
  std::printf("... (%zu bytes total)\n\n", source.size());

  auto sig_kernel = jit::CompileVariant(sigmoid);
  std::printf("compiled: %s (use_softmax=%d)\n", sig_kernel->so_path().c_str(),
              sig_kernel->use_softmax());
  const float sig_extras[2] = {1.0f, 0.0f};
  RunVariant("FlashSigmoid", sig_kernel, sig_extras, 2);

  // --- A banded-attention variant with a tunable bandwidth. ----------------
  jit::AttentionSpecDesc banded;
  banded.name = "BandedAttention";
  banded.kv_dtype = DType::kF16;
  banded.extra_params = {{"band", 16.0f}};
  banded.logits_mask_body =
      "return ctx.kv_pos <= ctx.q_pos && ctx.q_pos - ctx.kv_pos < "
      "static_cast<int64_t>(band);";
  auto band_kernel = jit::CompileVariant(banded);
  const float band_extras[1] = {16.0f};
  RunVariant("BandedAttention(16)", band_kernel, band_extras, 1);

  // Compiling the same spec again is free (in-process registry); a new
  // process would hit the on-disk .so cache instead.
  jit::CompileVariant(sigmoid);
  const auto stats = jit::GetJitCacheStats();
  std::printf("jit cache: %lld compilations, %lld memory hits, %lld disk hits\n",
              static_cast<long long>(stats.compilations),
              static_cast<long long>(stats.memory_hits),
              static_cast<long long>(stats.disk_hits));
  return 0;
}
