// Parallel generation with shared prefixes (Sec. 4.4): the OpenAI "n"
// parameter forks n continuations of one prompt. The radix tree caches the
// prompt's pages; each branch adopts them by reference (no copies) and
// appends its own suffix. Decoding uses the two-level composable format
// (Sec. 3.1.2): the shared prefix is processed once per group at Br = n x g,
// the unique suffixes at Br = 1, and the two partial states merge with ⊕.
#include <cstdio>
#include <numeric>

#include "kvcache/radix.h"
#include "kvcache/ragged.h"
#include "runtime/batch_handle.h"
#include "serving/backends.h"
#include "sparse/composable.h"
#include "util/rng.h"

using namespace flashinfer;

int main() {
  const int heads = 32, kv_heads = 8, head_dim = 128, page_size = 16;
  const int n = 16;                  // Parallel branches.
  const int64_t prompt_len = 8192;   // Shared prompt.
  const int64_t suffix_len = 128;    // Already-decoded unique tokens.

  PagedKVCache cache(DType::kF16, kv_heads, head_dim, page_size, 1024);
  RadixTree radix(page_size);
  Rng rng(9);

  // --- Prefill the prompt once and publish it in the radix tree. -----------
  std::vector<int32_t> prompt_tokens(static_cast<size_t>(prompt_len));
  for (auto& tok : prompt_tokens) tok = static_cast<int32_t>(rng.UniformInt(0, 31999));
  const int prompt_seq = cache.CreateSequence();
  {
    std::vector<float> k(static_cast<size_t>(prompt_len) * kv_heads * head_dim);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
    cache.AppendTokens(prompt_seq, k.data(), v.data(), prompt_len);
  }
  radix.Insert(prompt_tokens, cache.SequencePages(prompt_seq));
  // The radix cache holds its own reference on every published page; evicting
  // a tree node is what finally releases it.
  for (int64_t page : cache.SequencePages(prompt_seq)) cache.RetainPage(page);
  std::printf("radix tree: %lld cached pages after prompt insert\n",
              static_cast<long long>(radix.TotalCachedPages()));

  // --- Fork n branches: each matches the cached prefix and adopts it. ------
  std::vector<int> branch_seqs;
  for (int b = 0; b < n; ++b) {
    const auto match = radix.MatchPrefix(prompt_tokens);
    const int seq = cache.CreateSequence();
    cache.AdoptPrefix(seq, match.pages, match.matched_tokens);
    std::vector<float> k(static_cast<size_t>(suffix_len) * kv_heads * head_dim);
    std::vector<float> v(k.size());
    for (auto& x : k) x = static_cast<float>(rng.Normal(0, 1));
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
    cache.AppendTokens(seq, k.data(), v.data(), suffix_len);
    branch_seqs.push_back(seq);
  }
  std::printf("prefix page refcount after forking %d branches: %d\n", n,
              cache.RefCount(cache.SequencePages(prompt_seq)[0]));

  // --- Decode step over the composable format. -----------------------------
  const int group = heads / kv_heads;
  std::vector<int64_t> fused_lens(static_cast<size_t>(n), group);  // 1 token x g.
  const auto fused_indptr = BuildIndptr(fused_lens);
  const auto qo_indptr = BuildIndptr(std::vector<int64_t>(static_cast<size_t>(n), 1));

  // Level 0 (shared prefix) + level 1 (unique suffixes).
  sparse::PrefixGroup grp;
  grp.pages = cache.SequencePages(prompt_seq);
  grp.last_page_len = page_size;
  for (int b = 0; b < n; ++b) grp.members.push_back(b);
  std::vector<sparse::RequestKv> unique_kv;
  for (int b = 0; b < n; ++b) {
    auto kv = cache.ExportKv(branch_seqs[static_cast<size_t>(b)]);
    // Drop the shared prefix pages from the unique view.
    kv.pages.erase(kv.pages.begin(), kv.pages.begin() + static_cast<long>(grp.pages.size()));
    kv.pos_offset = prompt_len;
    unique_kv.push_back(kv);
  }
  const auto fmt =
      sparse::BuildSharedPrefixComposable(fused_indptr, unique_kv, {grp}, page_size, group);
  std::printf("composable format: level0 Br=%d (%lld prefix blocks), level1 Br=%d\n",
              fmt.levels[0].bsr.br, static_cast<long long>(fmt.levels[0].bsr.Nnz()),
              fmt.levels[1].bsr.br);

  // Price the step both ways on the simulated H100 (same machinery the
  // serving engine uses), matching Fig. 10's single-vs-composable question.
  serving::AttnSimInput in;
  in.qo_lens.assign(static_cast<size_t>(n), 1);
  in.kv_lens.assign(static_cast<size_t>(n), prompt_len + suffix_len);
  in.num_qo_heads = heads;
  in.num_kv_heads = kv_heads;
  in.head_dim = head_dim;
  in.page_size = page_size;
  serving::AttnSimInput::Group g;
  g.prefix_len = prompt_len;
  g.members.resize(static_cast<size_t>(n));
  std::iota(g.members.begin(), g.members.end(), 0);
  in.groups.push_back(g);

  auto single = serving::FlashInferBackend();
  auto comp = serving::FlashInferBackend();
  comp.composable = true;
  const auto dev = gpusim::H100Sxm80GB();
  const double t_single = serving::SimulateBatchAttention(dev, single, in).time_us;
  const double t_comp = serving::SimulateBatchAttention(dev, comp, in).time_us;
  std::printf("decode attention per layer: single format %.2f us, composable %.2f us "
              "(%.1f%% faster)\n",
              t_single, t_comp, 100.0 * (t_single - t_comp) / t_single);

  // Cleanup: branches release their suffix pages and prefix references.
  for (int seq : branch_seqs) cache.DropSequence(seq);
  cache.DropSequence(prompt_seq);
  std::printf("live pages after teardown: %lld (radix still pins %lld)\n",
              static_cast<long long>(cache.num_live_pages()),
              static_cast<long long>(radix.TotalCachedPages()));
  return 0;
}
